package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/grid3"
	"repro/internal/nodeset"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/shard"
)

// maxMeshSide bounds admin-created meshes so a single request cannot make
// the service allocate an absurd bitset universe; the manager's MaxMeshes
// bound (-max-meshes) caps what a sequence of requests can accumulate.
// maxMeshNodes additionally bounds the node count, which matters for 3-D
// meshes where three in-range sides can still multiply into gigabytes of
// bitset (every 2-D mesh within maxMeshSide is automatically within it).
const (
	maxMeshSide  = 2048
	maxMeshNodes = 1 << 24
)

// maxEventBody bounds an events request body (~8 MiB, hundreds of
// thousands of events) so an oversized or endless body cannot exhaust the
// service's memory.
const maxEventBody = 8 << 20

// maxRouteBody bounds a route request body, and maxRoutePairs the number
// of pairs one batched request may carry: a batch occupies a worker pool
// until it drains, so its size must stay a unit of scheduling, not a whole
// workload.
const (
	maxRouteBody  = 1 << 20
	maxRoutePairs = 4096
)

// server exposes a shard.Manager over HTTP. Mesh-scoped queries read a
// single shard view up front and answer entirely from it, so every
// response is internally consistent even while event batches land.
//
// The API is versioned under /v1; /healthz and /metrics are
// infrastructure endpoints and stay unversioned.
//
// Routes:
//
//	GET    /healthz
//	GET    /metrics                       Prometheus text metrics (obs.Default)
//	GET    /v1/meshes                     list every mesh with stats
//	POST   /v1/meshes                     create a mesh {"name","width","height"}
//	DELETE /v1/meshes/{name}              drain and delete a mesh
//	POST   /v1/meshes/{name}/events       apply a JSON array of fault events
//	GET    /v1/meshes/{name}/status?x=&y= per-node status
//	GET    /v1/meshes/{name}/polygons     every component's minimum polygon
//	POST   /v1/meshes/{name}/route        route messages around the polygons
//	GET    /v1/meshes/{name}/stats        shard + construction metrics
//
// The pre-versioning paths (/meshes...) answer identically for one
// release, marked with a "Deprecation: true" response header; new clients
// must use /v1.
//
// Route queries are served from a routing planner memoized per shard
// version (see shard.Shard.Planner): concurrent queries at one fault state
// share the preprocessing, and the next fault event invalidates it. The
// per-shard cache hit rate is part of /meshes/{name}/stats.
type server struct {
	mgr *shard.Manager
	// routeSem is the server-wide budget of batch-routing workers (one
	// token per CPU): each batched /route request grabs as many tokens as
	// are free (blocking only for the first) and sizes its RouteAll pool
	// accordingly, so an idle server gives one batch full parallelism
	// while concurrent batches share the machine instead of each spawning
	// a GOMAXPROCS-wide pool of their own.
	routeSem chan struct{}
}

func newServer(mgr *shard.Manager) *server {
	return &server{
		mgr:      mgr,
		routeSem: make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
}

// acquireRouteWorkers takes between 1 and want tokens from the route
// budget, blocking only until the first is available. The caller must
// release exactly the returned count.
func (s *server) acquireRouteWorkers(want int) int {
	s.routeSem <- struct{}{}
	got := 1
	for got < want {
		select {
		case s.routeSem <- struct{}{}:
			got++
		default:
			return got
		}
	}
	return got
}

func (s *server) releaseRouteWorkers(n int) {
	for i := 0; i < n; i++ {
		<-s.routeSem
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if rest, ok := strings.CutPrefix(r.URL.Path, "/v1"); ok && (rest == "" || rest[0] == '/') {
		s.serveAPI(w, r, rest)
		return
	}
	switch {
	case r.URL.Path == "/healthz":
		s.handleHealthz(w, r)
	case r.URL.Path == "/metrics":
		obs.Default.Handler().ServeHTTP(w, r)
	case r.URL.Path == "/meshes" || strings.HasPrefix(r.URL.Path, "/meshes/"):
		// Pre-versioning alias: same handlers, same bodies, flagged as
		// deprecated so clients migrate to /v1 before the alias is removed.
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/meshes>; rel="successor-version"`)
		s.serveAPI(w, r, r.URL.Path)
	default:
		writeError(w, http.StatusNotFound, codeNotFound, "no route %s (see /v1/meshes)", r.URL.Path)
	}
}

// serveAPI dispatches the versioned API surface. path is the request path
// with any /v1 prefix already removed, so /v1 traffic and the deprecated
// unversioned alias share one code path and cannot drift apart.
func (s *server) serveAPI(w http.ResponseWriter, r *http.Request, path string) {
	switch {
	case path == "/meshes" || path == "/meshes/":
		s.handleMeshes(w, r)
	case strings.HasPrefix(path, "/meshes/"):
		s.handleMesh(w, r, strings.TrimPrefix(path, "/meshes/"))
	default:
		writeError(w, http.StatusNotFound, codeNotFound, "no route %s (see /v1/meshes)", r.URL.Path)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Error codes carried by the uniform error envelope. Machine-readable and
// stable under /v1: clients branch on the code, humans read the message.
const (
	codeNotFound         = "not_found"
	codeBadRequest       = "bad_request"
	codeMethodNotAllowed = "method_not_allowed"
	codeBodyTooLarge     = "body_too_large"
	codeMeshExists       = "mesh_exists"
	codeMeshClosed       = "mesh_closed"
	codeMeshFailed       = "mesh_failed"
	codeUnknownMesh      = "unknown_mesh"
	codeTooManyMeshes    = "too_many_meshes"
	codeBlockedEndpoint  = "blocked_endpoint"
	codeUndeliverable    = "undeliverable"
	codeInternal         = "internal"
)

// errorReply is the uniform error envelope: every non-2xx response body is
// {"error":{"code":"...","message":"..."}}.
type errorReply struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorReply{Error: errorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// writeDecodeError distinguishes a body that tripped the MaxBytesReader
// cap (413 — a well-formed client should split and retry) from one that is
// malformed (400 — retrying the same payload is pointless).
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge, "body exceeds %d bytes", tooBig.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
}

// writeShardError maps shard-layer errors onto HTTP statuses: a name that
// resolves to nothing is 404, a mesh deleted (or a manager shut down) while
// the request was in flight is 409 — the caller raced an administrative
// action, not a bad request — and a shard that latched an internal failure
// is 500: the fault is the server's, not the client's.
func writeShardError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, shard.ErrShardFailed):
		writeError(w, http.StatusInternalServerError, codeMeshFailed, "%v", err)
	case errors.Is(err, shard.ErrUnknownMesh):
		writeError(w, http.StatusNotFound, codeUnknownMesh, "%v", err)
	case errors.Is(err, shard.ErrClosed):
		writeError(w, http.StatusConflict, codeMeshClosed, "%v", err)
	case errors.Is(err, shard.ErrMeshExists):
		writeError(w, http.StatusConflict, codeMeshExists, "%v", err)
	case errors.Is(err, shard.ErrTooManyMeshes):
		writeError(w, http.StatusTooManyRequests, codeTooManyMeshes, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type createRequest struct {
	Name   string `json:"name"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	// Depth selects a 3-D mesh when positive: the mesh is served by the
	// 3-D engine (events carry a z, the polygons endpoint serves
	// polytopes) and has no route endpoint. Omitted or zero means 2-D.
	Depth int `json:"depth,omitempty"`
}

type meshesReply struct {
	Meshes []shard.Stats `json:"meshes"`
}

// handleMeshes serves the collection: GET lists, POST creates.
func (s *server) handleMeshes(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, meshesReply{Meshes: s.mgr.List()})
	case http.MethodPost:
		// Strict decode, like the events endpoints: data trailing the JSON
		// document means a truncated or concatenated client write, which
		// must be rejected, not half-accepted.
		var req createRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
		if err := dec.Decode(&req); err != nil {
			writeDecodeError(w, fmt.Errorf("bad create request: %w", err))
			return
		}
		if _, err := dec.Token(); err != io.EOF {
			writeError(w, http.StatusBadRequest, codeBadRequest, "trailing data after create request")
			return
		}
		if req.Width <= 0 || req.Height <= 0 || req.Width > maxMeshSide || req.Height > maxMeshSide {
			writeError(w, http.StatusBadRequest, codeBadRequest,
				"mesh must be 1..%d on each side, got %dx%d", maxMeshSide, req.Width, req.Height)
			return
		}
		if req.Depth < 0 || req.Depth > maxMeshSide {
			writeError(w, http.StatusBadRequest, codeBadRequest,
				"depth must be 0 (2-D) or 1..%d, got %d", maxMeshSide, req.Depth)
			return
		}
		if req.Depth > 0 && req.Width*req.Height*req.Depth > maxMeshNodes {
			writeError(w, http.StatusBadRequest, codeBadRequest,
				"mesh of %dx%dx%d exceeds %d nodes", req.Width, req.Height, req.Depth, maxMeshNodes)
			return
		}
		var stats shard.Stats
		if req.Depth > 0 {
			sh, err := s.mgr.Create3(req.Name, grid3.New(req.Width, req.Height, req.Depth))
			if err != nil {
				writeShardError(w, err)
				return
			}
			stats = sh.Stats()
		} else {
			sh, err := s.mgr.Create(req.Name, grid.New(req.Width, req.Height))
			if err != nil {
				writeShardError(w, err)
				return
			}
			stats = sh.Stats()
		}
		writeJSON(w, http.StatusCreated, stats)
	default:
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET lists meshes, POST creates one")
	}
}

// handleMesh routes /v1/meshes/{name}[/...]: DELETE on the bare name, and
// the events/status/polygons/stats sub-resources, dispatching on the mesh's
// dimensionality (route exists only on 2-D meshes). rest is the path after
// the meshes/ segment, version prefix already stripped.
func (s *server) handleMesh(w http.ResponseWriter, r *http.Request, rest string) {
	name, sub, _ := strings.Cut(rest, "/")
	t, err := s.mgr.Lookup(name)
	if err != nil {
		writeShardError(w, err)
		return
	}
	if sub == "" {
		if r.Method != http.MethodDelete {
			writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "DELETE removes the mesh; its data lives under /v1/meshes/%s/...", name)
			return
		}
		if err := s.mgr.Delete(name); err != nil {
			writeShardError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
		return
	}
	switch sh := t.(type) {
	case *shard.Shard:
		switch sub {
		case "events":
			s.handleEvents(w, r, sh)
		case "status":
			s.handleStatus(w, r, sh)
		case "polygons":
			s.handlePolygons(w, r, sh)
		case "route":
			s.handleRoute(w, r, sh)
		case "stats":
			s.handleStats(w, r, sh)
		default:
			writeError(w, http.StatusNotFound, codeNotFound, "no route %s under /v1/meshes/%s", sub, name)
		}
	case *shard.Shard3:
		switch sub {
		case "events":
			s.handleEvents3(w, r, sh)
		case "status":
			s.handleStatus3(w, r, sh)
		case "polygons":
			s.handlePolygons3(w, r, sh)
		case "route":
			writeError(w, http.StatusNotFound, codeNotFound, "routing is 2-D only; mesh %s is 3-D", name)
		case "stats":
			s.handleStats3(w, r, sh)
		default:
			writeError(w, http.StatusNotFound, codeNotFound, "no route %s under /v1/meshes/%s", sub, name)
		}
	default:
		writeError(w, http.StatusInternalServerError, codeInternal, "unknown mesh kind for %s", name)
	}
}

type eventsReply struct {
	// Version is the shard's event version after this batch (cumulative
	// state-changing events over the mesh's lifetime — stable across
	// engine evictions); Applied counts this batch's events that changed
	// state, Ignored the duplicate adds and clears of healthy nodes.
	Version    uint64 `json:"version"`
	Applied    int    `json:"applied"`
	Ignored    int    `json:"ignored"`
	Faults     int    `json:"faults"`
	Components int    `json:"components"`
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request, sh *shard.Shard) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "POST a JSON array of events")
		return
	}
	events, err := engine.DecodeEvents(http.MaxBytesReader(w, r.Body, maxEventBody))
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	res, err := sh.Apply(events)
	if err != nil {
		writeShardError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, eventsReply{
		Version:    res.View.Version,
		Applied:    res.Applied,
		Ignored:    res.Ignored,
		Faults:     res.View.Snapshot.Faults().Len(),
		Components: len(res.View.Snapshot.Polygons()),
	})
}

type statusReply struct {
	X       int    `json:"x"`
	Y       int    `json:"y"`
	Class   string `json:"class"`
	Version uint64 `json:"version"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request, sh *shard.Shard) {
	x, errX := strconv.Atoi(r.URL.Query().Get("x"))
	y, errY := strconv.Atoi(r.URL.Query().Get("y"))
	if errX != nil || errY != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "need integer x and y query parameters")
		return
	}
	node := grid.XY(x, y)
	if !sh.Mesh().Contains(node) {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v outside %v", node, sh.Mesh())
		return
	}
	v, err := sh.Read()
	if err != nil {
		writeShardError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, statusReply{
		X: x, Y: y,
		Class:   v.Snapshot.Class(node).String(),
		Version: v.Version,
	})
}

type xy struct {
	X int `json:"x"`
	Y int `json:"y"`
}

func coords(set *nodeset.Set) []xy {
	out := make([]xy, 0, set.Len())
	set.Each(func(c grid.Coord) { out = append(out, xy{c.X, c.Y}) })
	return out
}

type polygonReply struct {
	// Faults are the component's faulty nodes, Polygon its minimum
	// faulty polygon (faults included), both in row-major order.
	Faults  []xy `json:"faults"`
	Polygon []xy `json:"polygon"`
}

type polygonsReply struct {
	Version  uint64         `json:"version"`
	Polygons []polygonReply `json:"polygons"`
}

func (s *server) handlePolygons(w http.ResponseWriter, r *http.Request, sh *shard.Shard) {
	v, err := sh.Read()
	if err != nil {
		writeShardError(w, err)
		return
	}
	snap := v.Snapshot
	reply := polygonsReply{Version: v.Version, Polygons: make([]polygonReply, len(snap.Polygons()))}
	for i, poly := range snap.Polygons() {
		reply.Polygons[i] = polygonReply{
			Faults:  coords(snap.Components()[i]),
			Polygon: coords(poly),
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

// routeRequest is the /route body: either one pair (src + dst) or a batch
// (pairs), never both.
type routeRequest struct {
	Src   *xy         `json:"src,omitempty"`
	Dst   *xy         `json:"dst,omitempty"`
	Pairs []routePair `json:"pairs,omitempty"`
}

type routePair struct {
	Src xy `json:"src"`
	Dst xy `json:"dst"`
}

// routeReply answers a single-pair query with the full trajectory.
type routeReply struct {
	// Version is the shard version the route was computed against;
	// CacheHit reports whether the query reused a memoized planner.
	Version      uint64 `json:"version"`
	CacheHit     bool   `json:"cache_hit"`
	Src          xy     `json:"src"`
	Dst          xy     `json:"dst"`
	Length       int    `json:"length"`
	AbnormalHops int    `json:"abnormal_hops"`
	Path         []xy   `json:"path"`
}

// batchRouteReply answers a batched query with per-pair outcomes (hop
// counts, not full paths — a batch exists to amortize, not to stream
// trajectories).
type batchRouteReply struct {
	Version  uint64             `json:"version"`
	CacheHit bool               `json:"cache_hit"`
	Routes   []batchRouteResult `json:"routes"`
}

type batchRouteResult struct {
	Length       int    `json:"length"`
	AbnormalHops int    `json:"abnormal_hops"`
	Error        string `json:"error,omitempty"`
}

// routeStatus maps a routing failure onto its HTTP status and error code:
// a disabled endpoint is a conflict with the mesh's current fault state
// (it can heal), an undeliverable route (border detour, exhausted hop
// budget) is a semantically valid request the current topology cannot
// satisfy, and anything else (endpoints off the mesh) is a bad request.
func routeStatus(err error) (int, string) {
	switch {
	case errors.Is(err, routing.ErrBlockedEndpoint):
		return http.StatusConflict, codeBlockedEndpoint
	case errors.Is(err, routing.ErrBorderRegion), errors.Is(err, routing.ErrHopBudget):
		return http.StatusUnprocessableEntity, codeUndeliverable
	default:
		return http.StatusBadRequest, codeBadRequest
	}
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request, sh *shard.Shard) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, `POST {"src":{"x":..,"y":..},"dst":{..}} or {"pairs":[..]}`)
		return
	}
	var req routeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRouteBody))
	if err := dec.Decode(&req); err != nil {
		writeDecodeError(w, fmt.Errorf("bad route request: %w", err))
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		writeError(w, http.StatusBadRequest, codeBadRequest, "trailing data after route request")
		return
	}
	single := req.Src != nil || req.Dst != nil
	if single == (len(req.Pairs) > 0) {
		writeError(w, http.StatusBadRequest, codeBadRequest, "provide either src+dst or pairs")
		return
	}
	if single && (req.Src == nil || req.Dst == nil) {
		writeError(w, http.StatusBadRequest, codeBadRequest, "single queries need both src and dst")
		return
	}
	if len(req.Pairs) > maxRoutePairs {
		writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge, "batch of %d pairs exceeds %d", len(req.Pairs), maxRoutePairs)
		return
	}

	planner, v, hit, err := sh.Planner()
	if err != nil {
		writeShardError(w, err)
		return
	}

	if single {
		src, dst := grid.XY(req.Src.X, req.Src.Y), grid.XY(req.Dst.X, req.Dst.Y)
		route, err := planner.Route(src, dst)
		if err != nil {
			status, code := routeStatus(err)
			writeError(w, status, code, "%v", err)
			return
		}
		path := make([]xy, 0, route.Length()+1)
		for _, c := range route.Path() {
			path = append(path, xy{c.X, c.Y})
		}
		writeJSON(w, http.StatusOK, routeReply{
			Version: v.Version, CacheHit: hit,
			Src: *req.Src, Dst: *req.Dst,
			Length: route.Length(), AbnormalHops: route.AbnormalHops,
			Path: path,
		})
		return
	}

	queries := make([]routing.Query, len(req.Pairs))
	for i, p := range req.Pairs {
		queries[i] = routing.Query{Src: grid.XY(p.Src.X, p.Src.Y), Dst: grid.XY(p.Dst.X, p.Dst.Y)}
	}
	workers := s.acquireRouteWorkers(min(len(queries), cap(s.routeSem)))
	results := planner.RouteAll(queries, workers)
	s.releaseRouteWorkers(workers)
	reply := batchRouteReply{Version: v.Version, CacheHit: hit, Routes: make([]batchRouteResult, len(results))}
	for i, res := range results {
		if res.Err != nil {
			reply.Routes[i] = batchRouteResult{Error: res.Err.Error()}
			continue
		}
		reply.Routes[i] = batchRouteResult{Length: res.Route.Length(), AbnormalHops: res.Route.AbnormalHops}
	}
	writeJSON(w, http.StatusOK, reply)
}

type statsReply struct {
	shard.Stats
	// Snapshot-derived metrics, omitted while the mesh's engine is evicted
	// (Resident false): serving them would force a rebuild, so routine
	// stats polling across many meshes would defeat the -max-resident
	// bound. Status and polygon queries do rebuild on demand.
	Disabled          *int     `json:"disabled,omitempty"`
	DisabledNonFaulty *int     `json:"disabled_non_faulty,omitempty"`
	Unsafe            *int     `json:"unsafe,omitempty"`
	MeanPolygonSize   *float64 `json:"mean_polygon_size,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request, sh *shard.Shard) {
	reply := statsReply{Stats: sh.Stats()}
	if v, ok := sh.Peek(); ok {
		snap := v.Snapshot
		disabled, nonFaulty := snap.Disabled().Len(), snap.DisabledNonFaulty()
		unsafe, mean := snap.Unsafe().Len(), snap.MeanPolygonSize()
		reply.Disabled, reply.DisabledNonFaulty = &disabled, &nonFaulty
		reply.Unsafe, reply.MeanPolygonSize = &unsafe, &mean
	}
	writeJSON(w, http.StatusOK, reply)
}
