package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/grid3"
	"repro/internal/nodeset"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/shard"
)

// maxMeshSide bounds admin-created meshes so a single request cannot make
// the service allocate an absurd bitset universe; the manager's MaxMeshes
// bound (-max-meshes) caps what a sequence of requests can accumulate.
// maxMeshNodes additionally bounds the node count, which matters for 3-D
// meshes where three in-range sides can still multiply into gigabytes of
// bitset (every 2-D mesh within maxMeshSide is automatically within it).
const (
	maxMeshSide  = 2048
	maxMeshNodes = 1 << 24
)

// maxEventBody bounds an events request body (~8 MiB, hundreds of
// thousands of events) so an oversized or endless body cannot exhaust the
// service's memory.
const maxEventBody = 8 << 20

// maxRouteBody bounds a route request body, and maxRoutePairs the number
// of pairs one batched request may carry: a batch occupies a worker pool
// until it drains, so its size must stay a unit of scheduling, not a whole
// workload.
const (
	maxRouteBody  = 1 << 20
	maxRoutePairs = 4096
)

// server exposes a shard.Manager over HTTP. Mesh-scoped queries read a
// single shard view up front and answer entirely from it, so every
// response is internally consistent even while event batches land.
//
// Routes:
//
//	GET    /healthz
//	GET    /metrics                    Prometheus text metrics (obs.Default)
//	GET    /meshes                     list every mesh with stats
//	POST   /meshes                     create a mesh {"name","width","height"}
//	DELETE /meshes/{name}              drain and delete a mesh
//	POST   /meshes/{name}/events       apply a JSON array of fault events
//	GET    /meshes/{name}/status?x=&y= per-node status
//	GET    /meshes/{name}/polygons     every component's minimum polygon
//	POST   /meshes/{name}/route        route messages around the polygons
//	GET    /meshes/{name}/stats        shard + construction metrics
//
// Route queries are served from a routing planner memoized per shard
// version (see shard.Shard.Planner): concurrent queries at one fault state
// share the preprocessing, and the next fault event invalidates it. The
// per-shard cache hit rate is part of /meshes/{name}/stats.
type server struct {
	mgr *shard.Manager
	// routeSem is the server-wide budget of batch-routing workers (one
	// token per CPU): each batched /route request grabs as many tokens as
	// are free (blocking only for the first) and sizes its RouteAll pool
	// accordingly, so an idle server gives one batch full parallelism
	// while concurrent batches share the machine instead of each spawning
	// a GOMAXPROCS-wide pool of their own.
	routeSem chan struct{}
}

func newServer(mgr *shard.Manager) *server {
	return &server{
		mgr:      mgr,
		routeSem: make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
}

// acquireRouteWorkers takes between 1 and want tokens from the route
// budget, blocking only until the first is available. The caller must
// release exactly the returned count.
func (s *server) acquireRouteWorkers(want int) int {
	s.routeSem <- struct{}{}
	got := 1
	for got < want {
		select {
		case s.routeSem <- struct{}{}:
			got++
		default:
			return got
		}
	}
	return got
}

func (s *server) releaseRouteWorkers(n int) {
	for i := 0; i < n; i++ {
		<-s.routeSem
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		s.handleHealthz(w, r)
	case r.URL.Path == "/metrics":
		obs.Default.Handler().ServeHTTP(w, r)
	case r.URL.Path == "/meshes" || r.URL.Path == "/meshes/":
		s.handleMeshes(w, r)
	case strings.HasPrefix(r.URL.Path, "/meshes/"):
		s.handleMesh(w, r)
	default:
		writeError(w, http.StatusNotFound, "no route %s (see /meshes)", r.URL.Path)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorReply struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorReply{Error: fmt.Sprintf(format, args...)})
}

// writeDecodeError distinguishes a body that tripped the MaxBytesReader
// cap (413 — a well-formed client should split and retry) from one that is
// malformed (400 — retrying the same payload is pointless).
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// writeShardError maps shard-layer errors onto HTTP statuses: a name that
// resolves to nothing is 404, a mesh deleted (or a manager shut down) while
// the request was in flight is 409 — the caller raced an administrative
// action, not a bad request — and a shard that latched an internal failure
// is 500: the fault is the server's, not the client's.
func writeShardError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, shard.ErrShardFailed):
		writeError(w, http.StatusInternalServerError, "%v", err)
	case errors.Is(err, shard.ErrUnknownMesh):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, shard.ErrClosed):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, shard.ErrMeshExists):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, shard.ErrTooManyMeshes):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type createRequest struct {
	Name   string `json:"name"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	// Depth selects a 3-D mesh when positive: the mesh is served by the
	// 3-D engine (events carry a z, the polygons endpoint serves
	// polytopes) and has no route endpoint. Omitted or zero means 2-D.
	Depth int `json:"depth,omitempty"`
}

type meshesReply struct {
	Meshes []shard.Stats `json:"meshes"`
}

// handleMeshes serves the collection: GET lists, POST creates.
func (s *server) handleMeshes(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, meshesReply{Meshes: s.mgr.List()})
	case http.MethodPost:
		// Strict decode, like the events endpoints: data trailing the JSON
		// document means a truncated or concatenated client write, which
		// must be rejected, not half-accepted.
		var req createRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
		if err := dec.Decode(&req); err != nil {
			writeDecodeError(w, fmt.Errorf("bad create request: %w", err))
			return
		}
		if _, err := dec.Token(); err != io.EOF {
			writeError(w, http.StatusBadRequest, "trailing data after create request")
			return
		}
		if req.Width <= 0 || req.Height <= 0 || req.Width > maxMeshSide || req.Height > maxMeshSide {
			writeError(w, http.StatusBadRequest,
				"mesh must be 1..%d on each side, got %dx%d", maxMeshSide, req.Width, req.Height)
			return
		}
		if req.Depth < 0 || req.Depth > maxMeshSide {
			writeError(w, http.StatusBadRequest,
				"depth must be 0 (2-D) or 1..%d, got %d", maxMeshSide, req.Depth)
			return
		}
		if req.Depth > 0 && req.Width*req.Height*req.Depth > maxMeshNodes {
			writeError(w, http.StatusBadRequest,
				"mesh of %dx%dx%d exceeds %d nodes", req.Width, req.Height, req.Depth, maxMeshNodes)
			return
		}
		var stats shard.Stats
		if req.Depth > 0 {
			sh, err := s.mgr.Create3(req.Name, grid3.New(req.Width, req.Height, req.Depth))
			if err != nil {
				writeShardError(w, err)
				return
			}
			stats = sh.Stats()
		} else {
			sh, err := s.mgr.Create(req.Name, grid.New(req.Width, req.Height))
			if err != nil {
				writeShardError(w, err)
				return
			}
			stats = sh.Stats()
		}
		writeJSON(w, http.StatusCreated, stats)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET lists meshes, POST creates one")
	}
}

// handleMesh routes /meshes/{name}[/...]: DELETE on the bare name, and the
// events/status/polygons/stats sub-resources, dispatching on the mesh's
// dimensionality (route exists only on 2-D meshes).
func (s *server) handleMesh(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/meshes/")
	name, sub, _ := strings.Cut(rest, "/")
	t, err := s.mgr.Lookup(name)
	if err != nil {
		writeShardError(w, err)
		return
	}
	if sub == "" {
		if r.Method != http.MethodDelete {
			writeError(w, http.StatusMethodNotAllowed, "DELETE removes the mesh; its data lives under /meshes/%s/...", name)
			return
		}
		if err := s.mgr.Delete(name); err != nil {
			writeShardError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
		return
	}
	switch sh := t.(type) {
	case *shard.Shard:
		switch sub {
		case "events":
			s.handleEvents(w, r, sh)
		case "status":
			s.handleStatus(w, r, sh)
		case "polygons":
			s.handlePolygons(w, r, sh)
		case "route":
			s.handleRoute(w, r, sh)
		case "stats":
			s.handleStats(w, r, sh)
		default:
			writeError(w, http.StatusNotFound, "no route %s under /meshes/%s", sub, name)
		}
	case *shard.Shard3:
		switch sub {
		case "events":
			s.handleEvents3(w, r, sh)
		case "status":
			s.handleStatus3(w, r, sh)
		case "polygons":
			s.handlePolygons3(w, r, sh)
		case "route":
			writeError(w, http.StatusNotFound, "routing is 2-D only; mesh %s is 3-D", name)
		case "stats":
			s.handleStats3(w, r, sh)
		default:
			writeError(w, http.StatusNotFound, "no route %s under /meshes/%s", sub, name)
		}
	default:
		writeError(w, http.StatusInternalServerError, "unknown mesh kind for %s", name)
	}
}

type eventsReply struct {
	// Version is the shard's event version after this batch (cumulative
	// state-changing events over the mesh's lifetime — stable across
	// engine evictions); Applied counts this batch's events that changed
	// state, Ignored the duplicate adds and clears of healthy nodes.
	Version    uint64 `json:"version"`
	Applied    int    `json:"applied"`
	Ignored    int    `json:"ignored"`
	Faults     int    `json:"faults"`
	Components int    `json:"components"`
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request, sh *shard.Shard) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON array of events")
		return
	}
	events, err := engine.DecodeEvents(http.MaxBytesReader(w, r.Body, maxEventBody))
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	res, err := sh.Apply(events)
	if err != nil {
		writeShardError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, eventsReply{
		Version:    res.View.Version,
		Applied:    res.Applied,
		Ignored:    res.Ignored,
		Faults:     res.View.Snapshot.Faults().Len(),
		Components: len(res.View.Snapshot.Polygons()),
	})
}

type statusReply struct {
	X       int    `json:"x"`
	Y       int    `json:"y"`
	Class   string `json:"class"`
	Version uint64 `json:"version"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request, sh *shard.Shard) {
	x, errX := strconv.Atoi(r.URL.Query().Get("x"))
	y, errY := strconv.Atoi(r.URL.Query().Get("y"))
	if errX != nil || errY != nil {
		writeError(w, http.StatusBadRequest, "need integer x and y query parameters")
		return
	}
	node := grid.XY(x, y)
	if !sh.Mesh().Contains(node) {
		writeError(w, http.StatusBadRequest, "%v outside %v", node, sh.Mesh())
		return
	}
	v, err := sh.Read()
	if err != nil {
		writeShardError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, statusReply{
		X: x, Y: y,
		Class:   v.Snapshot.Class(node).String(),
		Version: v.Version,
	})
}

type xy struct {
	X int `json:"x"`
	Y int `json:"y"`
}

func coords(set *nodeset.Set) []xy {
	out := make([]xy, 0, set.Len())
	set.Each(func(c grid.Coord) { out = append(out, xy{c.X, c.Y}) })
	return out
}

type polygonReply struct {
	// Faults are the component's faulty nodes, Polygon its minimum
	// faulty polygon (faults included), both in row-major order.
	Faults  []xy `json:"faults"`
	Polygon []xy `json:"polygon"`
}

type polygonsReply struct {
	Version  uint64         `json:"version"`
	Polygons []polygonReply `json:"polygons"`
}

func (s *server) handlePolygons(w http.ResponseWriter, r *http.Request, sh *shard.Shard) {
	v, err := sh.Read()
	if err != nil {
		writeShardError(w, err)
		return
	}
	snap := v.Snapshot
	reply := polygonsReply{Version: v.Version, Polygons: make([]polygonReply, len(snap.Polygons()))}
	for i, poly := range snap.Polygons() {
		reply.Polygons[i] = polygonReply{
			Faults:  coords(snap.Components()[i]),
			Polygon: coords(poly),
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

// routeRequest is the /route body: either one pair (src + dst) or a batch
// (pairs), never both.
type routeRequest struct {
	Src   *xy         `json:"src,omitempty"`
	Dst   *xy         `json:"dst,omitempty"`
	Pairs []routePair `json:"pairs,omitempty"`
}

type routePair struct {
	Src xy `json:"src"`
	Dst xy `json:"dst"`
}

// routeReply answers a single-pair query with the full trajectory.
type routeReply struct {
	// Version is the shard version the route was computed against;
	// CacheHit reports whether the query reused a memoized planner.
	Version      uint64 `json:"version"`
	CacheHit     bool   `json:"cache_hit"`
	Src          xy     `json:"src"`
	Dst          xy     `json:"dst"`
	Length       int    `json:"length"`
	AbnormalHops int    `json:"abnormal_hops"`
	Path         []xy   `json:"path"`
}

// batchRouteReply answers a batched query with per-pair outcomes (hop
// counts, not full paths — a batch exists to amortize, not to stream
// trajectories).
type batchRouteReply struct {
	Version  uint64             `json:"version"`
	CacheHit bool               `json:"cache_hit"`
	Routes   []batchRouteResult `json:"routes"`
}

type batchRouteResult struct {
	Length       int    `json:"length"`
	AbnormalHops int    `json:"abnormal_hops"`
	Error        string `json:"error,omitempty"`
}

// routeStatus maps a routing failure onto its HTTP status: a disabled
// endpoint is a conflict with the mesh's current fault state (it can heal),
// an undeliverable route (border detour, exhausted hop budget) is a
// semantically valid request the current topology cannot satisfy, and
// anything else (endpoints off the mesh) is a bad request.
func routeStatus(err error) int {
	switch {
	case errors.Is(err, routing.ErrBlockedEndpoint):
		return http.StatusConflict
	case errors.Is(err, routing.ErrBorderRegion), errors.Is(err, routing.ErrHopBudget):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request, sh *shard.Shard) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, `POST {"src":{"x":..,"y":..},"dst":{..}} or {"pairs":[..]}`)
		return
	}
	var req routeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRouteBody))
	if err := dec.Decode(&req); err != nil {
		writeDecodeError(w, fmt.Errorf("bad route request: %w", err))
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		writeError(w, http.StatusBadRequest, "trailing data after route request")
		return
	}
	single := req.Src != nil || req.Dst != nil
	if single == (len(req.Pairs) > 0) {
		writeError(w, http.StatusBadRequest, "provide either src+dst or pairs")
		return
	}
	if single && (req.Src == nil || req.Dst == nil) {
		writeError(w, http.StatusBadRequest, "single queries need both src and dst")
		return
	}
	if len(req.Pairs) > maxRoutePairs {
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d pairs exceeds %d", len(req.Pairs), maxRoutePairs)
		return
	}

	planner, v, hit, err := sh.Planner()
	if err != nil {
		writeShardError(w, err)
		return
	}

	if single {
		src, dst := grid.XY(req.Src.X, req.Src.Y), grid.XY(req.Dst.X, req.Dst.Y)
		route, err := planner.Route(src, dst)
		if err != nil {
			writeError(w, routeStatus(err), "%v", err)
			return
		}
		path := make([]xy, 0, route.Length()+1)
		for _, c := range route.Path() {
			path = append(path, xy{c.X, c.Y})
		}
		writeJSON(w, http.StatusOK, routeReply{
			Version: v.Version, CacheHit: hit,
			Src: *req.Src, Dst: *req.Dst,
			Length: route.Length(), AbnormalHops: route.AbnormalHops,
			Path: path,
		})
		return
	}

	queries := make([]routing.Query, len(req.Pairs))
	for i, p := range req.Pairs {
		queries[i] = routing.Query{Src: grid.XY(p.Src.X, p.Src.Y), Dst: grid.XY(p.Dst.X, p.Dst.Y)}
	}
	workers := s.acquireRouteWorkers(min(len(queries), cap(s.routeSem)))
	results := planner.RouteAll(queries, workers)
	s.releaseRouteWorkers(workers)
	reply := batchRouteReply{Version: v.Version, CacheHit: hit, Routes: make([]batchRouteResult, len(results))}
	for i, res := range results {
		if res.Err != nil {
			reply.Routes[i] = batchRouteResult{Error: res.Err.Error()}
			continue
		}
		reply.Routes[i] = batchRouteResult{Length: res.Route.Length(), AbnormalHops: res.Route.AbnormalHops}
	}
	writeJSON(w, http.StatusOK, reply)
}

type statsReply struct {
	shard.Stats
	// Snapshot-derived metrics, omitted while the mesh's engine is evicted
	// (Resident false): serving them would force a rebuild, so routine
	// stats polling across many meshes would defeat the -max-resident
	// bound. Status and polygon queries do rebuild on demand.
	Disabled          *int     `json:"disabled,omitempty"`
	DisabledNonFaulty *int     `json:"disabled_non_faulty,omitempty"`
	Unsafe            *int     `json:"unsafe,omitempty"`
	MeanPolygonSize   *float64 `json:"mean_polygon_size,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request, sh *shard.Shard) {
	reply := statsReply{Stats: sh.Stats()}
	if v, ok := sh.Peek(); ok {
		snap := v.Snapshot
		disabled, nonFaulty := snap.Disabled().Len(), snap.DisabledNonFaulty()
		unsafe, mean := snap.Unsafe().Len(), snap.MeanPolygonSize()
		reply.Disabled, reply.DisabledNonFaulty = &disabled, &nonFaulty
		reply.Unsafe, reply.MeanPolygonSize = &unsafe, &mean
	}
	writeJSON(w, http.StatusOK, reply)
}
