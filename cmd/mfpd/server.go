package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/nodeset"
)

// server exposes one engine over HTTP. Handlers read a single snapshot up
// front and answer entirely from it, so every response is internally
// consistent even while event batches land.
type server struct {
	eng *engine.Engine
	mux *http.ServeMux
}

func newServer(eng *engine.Engine) *server {
	s := &server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/polygons", s.handlePolygons)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorReply struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorReply{Error: fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type eventsReply struct {
	// Version is the engine version after the batch; Applied counts the
	// events that changed state, Ignored the duplicate adds and clears of
	// healthy nodes.
	Version    uint64 `json:"version"`
	Applied    int    `json:"applied"`
	Ignored    int    `json:"ignored"`
	Faults     int    `json:"faults"`
	Components int    `json:"components"`
}

// maxEventBody bounds the /events request body (~8 MiB, hundreds of
// thousands of events) so an oversized or endless body cannot exhaust the
// service's memory.
const maxEventBody = 8 << 20

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a JSON array of events")
		return
	}
	var events []engine.Event
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEventBody)).Decode(&events); err != nil {
		writeError(w, http.StatusBadRequest, "bad event batch: %v", err)
		return
	}
	// Apply returns the snapshot it published, so the reply describes this
	// batch's outcome even when other batches land concurrently.
	applied, snap, err := s.eng.Apply(events)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, eventsReply{
		Version:    snap.Version(),
		Applied:    applied,
		Ignored:    len(events) - applied,
		Faults:     snap.Faults().Len(),
		Components: len(snap.Polygons()),
	})
}

type statusReply struct {
	X       int    `json:"x"`
	Y       int    `json:"y"`
	Class   string `json:"class"`
	Version uint64 `json:"version"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	x, errX := strconv.Atoi(r.URL.Query().Get("x"))
	y, errY := strconv.Atoi(r.URL.Query().Get("y"))
	if errX != nil || errY != nil {
		writeError(w, http.StatusBadRequest, "need integer x and y query parameters")
		return
	}
	node := grid.XY(x, y)
	snap := s.eng.Snapshot()
	if !snap.Mesh().Contains(node) {
		writeError(w, http.StatusBadRequest, "%v outside %v", node, snap.Mesh())
		return
	}
	writeJSON(w, http.StatusOK, statusReply{
		X: x, Y: y,
		Class:   snap.Class(node).String(),
		Version: snap.Version(),
	})
}

type xy struct {
	X int `json:"x"`
	Y int `json:"y"`
}

func coords(set *nodeset.Set) []xy {
	out := make([]xy, 0, set.Len())
	set.Each(func(c grid.Coord) { out = append(out, xy{c.X, c.Y}) })
	return out
}

type polygonReply struct {
	// Faults are the component's faulty nodes, Polygon its minimum
	// faulty polygon (faults included), both in row-major order.
	Faults  []xy `json:"faults"`
	Polygon []xy `json:"polygon"`
}

type polygonsReply struct {
	Version  uint64         `json:"version"`
	Polygons []polygonReply `json:"polygons"`
}

func (s *server) handlePolygons(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Snapshot()
	reply := polygonsReply{Version: snap.Version(), Polygons: make([]polygonReply, len(snap.Polygons()))}
	for i, poly := range snap.Polygons() {
		reply.Polygons[i] = polygonReply{
			Faults:  coords(snap.Components()[i].Nodes),
			Polygon: coords(poly),
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

type statsReply struct {
	Version           uint64  `json:"version"`
	MeshWidth         int     `json:"mesh_width"`
	MeshHeight        int     `json:"mesh_height"`
	Faults            int     `json:"faults"`
	Components        int     `json:"components"`
	Disabled          int     `json:"disabled"`
	DisabledNonFaulty int     `json:"disabled_non_faulty"`
	Unsafe            int     `json:"unsafe"`
	MeanPolygonSize   float64 `json:"mean_polygon_size"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Snapshot()
	writeJSON(w, http.StatusOK, statsReply{
		Version:           snap.Version(),
		MeshWidth:         snap.Mesh().W,
		MeshHeight:        snap.Mesh().H,
		Faults:            snap.Faults().Len(),
		Components:        len(snap.Polygons()),
		Disabled:          snap.Disabled().Len(),
		DisabledNonFaulty: snap.DisabledNonFaulty(),
		Unsafe:            snap.Unsafe().Len(),
		MeanPolygonSize:   snap.MeanPolygonSize(),
	})
}
