// Command mfpviz renders a fault scenario as ASCII under the three fault
// models, showing how the minimum faulty polygon model re-enables nodes
// that the faulty block model disables.
//
// Usage examples:
//
//	mfpviz                              # 24x24 mesh, 20 clustered faults
//	mfpviz -mesh 30 -faults 40 -dist random -seed 7
//	mfpviz -model mfp                   # render a single model only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dmfp"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/render"
	"repro/internal/status"
)

func main() {
	size := flag.Int("mesh", 24, "mesh side length")
	n := flag.Int("faults", 20, "number of faults to inject")
	dist := flag.String("dist", "clustered", "fault distribution: random or clustered")
	seed := flag.Int64("seed", 3, "injection seed")
	model := flag.String("model", "all", "model to render: fb, fp, mfp or all")
	rings := flag.Bool("rings", false, "overlay the distributed construction's boundary rings and initiators")
	flag.Parse()

	fm, err := fault.ParseModel(*dist)
	if err != nil {
		fatal(err)
	}
	m := grid.New(*size, *size)
	faults := fault.NewInjector(m, fm, *seed).Inject(*n)
	c := core.Construct(m, faults, core.Options{})
	if err := c.Validate(); err != nil {
		fatal(err)
	}

	models := map[string]core.Model{"fb": core.FB, "fp": core.FP, "mfp": core.MFP}
	order := []string{"fb", "fp", "mfp"}
	if *model != "all" {
		if _, ok := models[*model]; !ok {
			fatal(fmt.Errorf("unknown model %q", *model))
		}
		order = []string{*model}
	}

	fmt.Printf("%v, %d faults (%s model, seed %d)\n\n", m, *n, fm, *seed)
	for _, name := range order {
		mo := models[name]
		fmt.Printf("=== %s: %d non-faulty nodes disabled, mean region size %.2f ===\n",
			mo, c.DisabledNonFaulty(mo), c.MeanRegionSize(mo))
		if *rings && mo == core.MFP {
			fmt.Print(renderWithRings(m, c))
		} else {
			fmt.Print(render.Classes(m, func(cc grid.Coord) status.Class { return c.Class(mo, cc) }))
		}
		fmt.Println()
	}
	fmt.Print(render.Legend())
	if *rings {
		fmt.Println("r boundary ring   I initiator (west-most south-west corner)")
	}
}

// renderWithRings overlays each component's boundary ring and initiator on
// the MFP classification.
func renderWithRings(m grid.Mesh, c *core.Construction) string {
	onRing := map[grid.Coord]bool{}
	initiator := map[grid.Coord]bool{}
	for _, comp := range c.Minimum.Components {
		walk := dmfp.Ring(comp.Nodes)
		if len(walk) == 0 {
			continue
		}
		for _, rc := range walk {
			if m.Contains(rc) {
				onRing[rc] = true
			}
		}
		if m.Contains(walk[0]) {
			initiator[walk[0]] = true
		}
	}
	return render.Grid(m, func(cc grid.Coord) rune {
		switch {
		case initiator[cc]:
			return 'I'
		case c.Class(core.MFP, cc) == status.Faulty:
			return render.GlyphFaulty
		case c.Class(core.MFP, cc) == status.Disabled:
			return render.GlyphDisabled
		case onRing[cc]:
			return 'r'
		case c.Class(core.MFP, cc) == status.Enabled:
			return render.GlyphEnabled
		default:
			return render.GlyphSafe
		}
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mfpviz:", err)
	os.Exit(2)
}
