// Command mfplint runs the repository's custom static-analysis suite
// (internal/lint) over the module: snapshotmut, scratchescape, obslabels,
// errenvelope, nakedgo, plus validation of the //mfplint: directives
// themselves. It exits non-zero when any diagnostic is reported, printing
// findings in the familiar path:line:col format.
//
// Usage:
//
//	mfplint [-list] [-only name[,name]] [packages]
//
// Packages default to ./... relative to the current directory. The
// module's own go tool resolves and type-checks everything offline — the
// suite has no third-party dependencies, mirroring the shape of
// golang.org/x/tools/go/analysis so it could migrate onto the real
// framework if the module ever takes on external deps.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mfplint [-list] [-only name[,name]] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	if *onlyFlag != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var picked []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "mfplint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mfplint: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mfplint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Packages()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mfplint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", loader.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mfplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
