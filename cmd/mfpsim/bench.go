package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine3"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/grid3"
	"repro/internal/mfp"
	"repro/internal/mfp3d"
	"repro/internal/nodeset"
	"repro/internal/routing"
	"repro/internal/wal"
)

// benchWorkerCounts returns the worker-pool sizes the -bench-json mode
// times: the powers of two from 1 up to limit, plus limit itself, so the
// report always contains the serial baseline and the full-machine run.
func benchWorkerCounts(limit int) []int {
	if limit < 1 {
		limit = 1
	}
	var out []int
	for w := 1; w < limit; w *= 2 {
		out = append(out, w)
	}
	return append(out, limit)
}

// minSample is the shortest total measurement timeIt accepts: sub-10ms
// single-shot timings are dominated by timer and scheduler noise, which
// made back-to-back identical runs trip the -bench-compare tolerance.
const minSample = 100 * time.Millisecond

// timeSamples is how many minSample-long measurements timeIt takes; it
// reports the fastest. Contention — co-tenants, GC, frequency dips —
// only ever adds time, so the minimum is the stable estimator of the
// code's cost, and it is what lets -bench-compare gate at a tight
// tolerance instead of absorbing the noise floor.
const timeSamples = 3

// timeIt runs fn at least `iterations` times, doubling the count until the
// whole measurement spans minSample (like testing.B's calibration), then
// repeats the measurement timeSamples times in all and returns the fastest
// mean wall-clock seconds of one run plus the iteration count used.
func timeIt(iterations int, fn func()) (float64, int) {
	n := iterations
	var best float64
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= minSample || n >= 1<<20 {
			best = elapsed.Seconds() / float64(n)
			break
		}
		n *= 2
	}
	for s := 1; s < timeSamples; s++ {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		if secs := time.Since(start).Seconds() / float64(n); secs < best {
			best = secs
		}
	}
	return best, n
}

// benchPasses is how many full sweep passes runBenchSweepBest merges.
// timeIt's min-of-samples absorbs noise spikes shorter than one
// measurement; a second whole pass, minutes later, absorbs the
// slow *phases* of a shared machine (co-tenant bursts, thermal dips)
// that outlast any single workload's samples.
const benchPasses = 2

// runBenchSweepBest runs the full sweep benchPasses times and keeps each
// record's fastest measurement (and the fastest calibration), then
// recomputes every derived speedup from the merged times. Contention only
// ever slows a measurement down, so per-record minimum over well-spaced
// passes estimates what the code costs, not what the machine was doing.
func runBenchSweepBest(models []fault.Model, figures []int, cfg experiments.Config, churn experiments.ChurnConfig, churn3s []experiments.Churn3Config, route experiments.RouteConfig, iterations, maxWorkers int) (*benchfmt.Report, error) {
	var best *benchfmt.Report
	for p := 0; p < benchPasses; p++ {
		rep, err := runBenchSweep(models, figures, cfg, churn, churn3s, route, iterations, maxWorkers)
		if err != nil {
			return nil, err
		}
		if best == nil {
			best = rep
			continue
		}
		if rep.CalibrationSeconds < best.CalibrationSeconds {
			best.CalibrationSeconds = rep.CalibrationSeconds
		}
		type key struct {
			name    string
			workers int
			unit    string
		}
		cur := map[key]benchfmt.Record{}
		for _, rec := range rep.Records {
			cur[key{rec.Name, rec.Workers, rec.Unit}] = rec
		}
		for i := range best.Records {
			b := &best.Records[i]
			if rec, ok := cur[key{b.Name, b.Workers, b.Unit}]; ok && rec.Seconds < b.Seconds {
				b.Seconds = rec.Seconds
				b.Iterations = rec.Iterations
			}
		}
	}
	best.ComputeSpeedups()
	recomputeStrategySpeedups(best)
	return best, nil
}

// recomputeStrategySpeedups refills the churn records' speedups after a
// ComputeSpeedups pass. Their speedups are cross-strategy (rebuild over
// incremental), not cross-worker, so they must be recomputed from the
// merged minima of the two sibling records — and an incremental-only
// record (rebuild infeasible at that scale) has no pair to form a ratio
// from, so the 1.0 ComputeSpeedups stamped on it (every Workers==1
// record is its own worker baseline) is cleared back to "no speedup".
func recomputeStrategySpeedups(rep *benchfmt.Report) {
	byName := map[string]float64{}
	for _, rec := range rep.Records {
		if rec.Unit == "" && rec.Workers == 1 {
			byName[rec.Name] = rec.Seconds
		}
	}
	for i := range rep.Records {
		rec := &rep.Records[i]
		if !strings.HasSuffix(rec.Name, "/incremental") {
			continue
		}
		sibling := strings.TrimSuffix(rec.Name, "/incremental") + "/rebuild"
		if rebuild, ok := byName[sibling]; ok && rec.Seconds > 0 {
			rec.Speedup = rebuild / rec.Seconds
		} else if !ok {
			rec.Speedup = 0
		}
	}
}

// runBenchSweep times every requested figure sweep, plus the paper's
// largest single construction (mfp.Build on 800 clustered faults) at each
// worker count, plus the churn scenario (incremental engine vs full
// rebuild per event), plus the route-serving workloads derived from the
// route config, and returns the report with speedups filled in.
// maxWorkers caps the timed pool sizes (the -workers flag); zero means up
// to one worker per CPU.
func runBenchSweep(models []fault.Model, figures []int, cfg experiments.Config, churn experiments.ChurnConfig, churn3s []experiments.Churn3Config, route experiments.RouteConfig, iterations, maxWorkers int) (*benchfmt.Report, error) {
	if iterations < 1 {
		iterations = 1
	}
	limit := runtime.GOMAXPROCS(0)
	if maxWorkers > 0 {
		limit = maxWorkers
	}
	rep := benchfmt.New(runtime.Version(), runtime.GOMAXPROCS(0))
	counts := benchWorkerCounts(limit)

	// Calibrate the machine first, through the same timeIt the workloads
	// use: the mean seconds of one CalibrationUnit run stamp the report,
	// and -bench-compare divides them out of every wall-clock ratio so a
	// baseline recorded on different hardware still gates at a tight
	// tolerance (see benchfmt.Diff).
	var calSink uint64
	calSecs, _ := timeIt(iterations, func() { calSink += benchfmt.CalibrationUnit() })
	_ = calSink
	rep.CalibrationSeconds = calSecs

	for _, model := range models {
		c := cfg
		c.Model = model
		for _, fig := range figures {
			// Surface bad figure numbers on a tiny probe sweep before timing:
			// timeIt would otherwise calibrate a near-instant erroring closure
			// through millions of iterations before the error is reported.
			probe := experiments.Config{MeshSize: 2, FaultCounts: []int{1}, Trials: 1, BaseSeed: 1, Model: model, Workers: 1}
			if _, err := experiments.Figure(fig, probe); err != nil {
				return nil, err
			}
			// The name encodes the full workload identity (fault counts and
			// seed included) so -bench-compare never matches records that
			// were produced by different configurations.
			name := fmt.Sprintf("figure%d/%s/mesh%d/trials%d/faults%s/seed%d",
				fig, model, c.MeshSize, c.Trials, faultsLabel(c.FaultCounts), c.BaseSeed)
			for _, w := range counts {
				c.Workers = w
				var runErr error
				secs, iters := timeIt(iterations, func() {
					if _, err := experiments.Figure(fig, c); err != nil {
						runErr = err
					}
				})
				if runErr != nil {
					return nil, runErr
				}
				rep.Add(benchfmt.Record{Name: name, Workers: w, Iterations: iters, Seconds: secs})
			}
		}
	}

	// The BenchmarkBuild800-class workload: one paper-scale construction,
	// isolating the per-component parallelism from the sweep-level pool.
	// Fixed at the paper's setting on purpose — it ignores -mesh/-faults so
	// the record stays comparable across every archived report.
	m := grid.New(100, 100)
	faults := fault.NewInjector(m, fault.Clustered, 1).Inject(800)
	for _, w := range counts {
		secs, iters := timeIt(iterations, func() { mfp.BuildWorkers(m, faults, w) })
		rep.Add(benchfmt.Record{
			Name: "mfp.Build/mesh100/faults800/seed1", Workers: w,
			Iterations: iters, Seconds: secs,
		})
	}

	// Route-serving records. The sweep record times the whole RouteSweep
	// scenario (engine feed, planner build, message batch per cell) at
	// each pool size; the planner record isolates the preprocessing one
	// planner cache miss pays; the serve record isolates steady-state
	// query serving — one prepared planner answering a fixed RouteAll
	// batch. All three derive from the route config, whose names encode
	// the scale, so reports at different settings never cross-compare.
	routeName := fmt.Sprintf("%s/faults%s", route.Name(), faultsLabel(route.FaultCounts))
	for _, w := range counts {
		route.Workers = w
		secs, iters := timeIt(iterations, func() { experiments.RouteSweep(route) })
		rep.Add(benchfmt.Record{Name: routeName, Workers: w, Iterations: iters, Seconds: secs})
	}

	serveFaults := route.FaultCounts[len(route.FaultCounts)-1]
	snap, queries := routeServeFixture(route, serveFaults)
	var planner *routing.Planner
	secs, iters := timeIt(iterations, func() { planner = routing.NewPlanner(snap) })
	rep.Add(benchfmt.Record{
		Name:       fmt.Sprintf("route/planner/mesh%d/faults%d/seed1", route.MeshSize, serveFaults),
		Workers:    1,
		Iterations: iters, Seconds: secs,
	})
	serveName := fmt.Sprintf("route/serve/mesh%d/faults%d/seed1/msgs%d", route.MeshSize, serveFaults, len(queries))
	for _, w := range counts {
		secs, iters := timeIt(iterations, func() { planner.RouteAll(queries, w) })
		rep.Add(benchfmt.Record{Name: serveName, Workers: w, Iterations: iters, Seconds: secs})
	}

	// WAL records. Durable serving pays three distinct costs, each timed in
	// isolation on seeded fixtures under a throwaway directory: append is
	// the fsync on the acknowledgement path (one coalesced batch logged
	// before the reply), compact is the snapshot rewrite that bounds the
	// log, and recover is the startup path — decode every surviving record
	// and replay it through engine.Replay with the same version check the
	// shard's own recovery performs. All three are run-goroutine-serial in
	// the shard, so they are timed at one worker; the names encode the
	// fixture scale for -bench-compare.
	if err := walBenchRecords(rep, m, faults, iterations); err != nil {
		return nil, err
	}

	rep.ComputeSpeedups()

	// The churn workload compares replay strategies, not pool sizes, so
	// its two records share the workload name with a strategy suffix and
	// carry a hand-filled speedup (rebuild time over incremental time).
	// They are added after ComputeSpeedups, which only knows worker-count
	// baselines and would reset the field.
	rebuildSecs, rebuildIters := timeIt(iterations, func() { experiments.ChurnRebuild(churn) })
	var churnErr error
	incSecs, incIters := timeIt(iterations, func() {
		if _, err := experiments.ChurnIncremental(churn); err != nil {
			churnErr = err
		}
	})
	if churnErr != nil {
		return nil, churnErr
	}
	rep.Add(benchfmt.Record{
		Name: churn.Name() + "/rebuild", Workers: 1,
		Iterations: rebuildIters, Seconds: rebuildSecs,
	})
	rep.Add(benchfmt.Record{
		Name: churn.Name() + "/incremental", Workers: 1,
		Iterations: incIters, Seconds: incSecs,
		Speedup: rebuildSecs / incSecs,
	})

	// The 3-D churn workloads: the same rebuild-vs-incremental pair at each
	// benchmarked scale, timing the incremental cuboid block model's
	// polytope and unsafe-set maintenance against a batch mfp3d.Build per
	// event. Past 64³ the rebuild arm is infeasible (minutes per replay —
	// the regime the incremental engine exists for), so those scales record
	// the incremental time alone, with no speedup.
	for _, churn3 := range churn3s {
		if churn3.RebuildFeasible() {
			rebuild3Secs, rebuild3Iters := timeIt(iterations, func() { experiments.Churn3Rebuild(churn3) })
			rep.Add(benchfmt.Record{
				Name: churn3.Name() + "/rebuild", Workers: 1,
				Iterations: rebuild3Iters, Seconds: rebuild3Secs,
			})
		}
		var churn3Err error
		inc3Secs, inc3Iters := timeIt(iterations, func() {
			if _, err := experiments.Churn3Incremental(churn3); err != nil {
				churn3Err = err
			}
		})
		if churn3Err != nil {
			return nil, churn3Err
		}
		inc := benchfmt.Record{
			Name: churn3.Name() + "/incremental", Workers: 1,
			Iterations: inc3Iters, Seconds: inc3Secs,
		}
		for _, rec := range rep.Records {
			if rec.Name == churn3.Name()+"/rebuild" {
				inc.Speedup = rec.Seconds / inc3Secs
			}
		}
		rep.Add(inc)
	}

	if err := engineAllocsRecord(rep); err != nil {
		return nil, err
	}
	if err := engine3AllocsRecord(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// engine3AllocsRecord is the 3-D twin of engineAllocsRecord: the
// incremental cuboid block model must patch its persistent unsafe set
// without per-event allocations, so the steady-state rate of the 3-D apply
// path is recorded (and gated by -bench-compare) as the same
// machine-independent "allocs/event" counter.
func engine3AllocsRecord(rep *benchfmt.Report) error {
	m := grid3.New(20, 20, 20)
	e, err := engine3.New(m)
	if err != nil {
		return err
	}
	faults := mfp3d.ClusteredFaults(m, 100, 1)
	faults.Each(func(c grid3.Coord) { e.AddFault(c) })

	// Add/clear pairs confined to a cluster, avoiding the base faults, the
	// same regime internal/engine3's TestApplyBatchAllocsPerEvent pins.
	rng := rand.New(rand.NewSource(7))
	const pairs = 128
	events := make([]engine3.Event, 0, 2*pairs)
	for len(events) < 2*pairs {
		c := grid3.XYZ(8+rng.Intn(6), 8+rng.Intn(6), 8+rng.Intn(6))
		if faults.Has(c) {
			continue
		}
		events = append(events,
			engine3.Event{Op: engine3.Add, Node: c},
			engine3.Event{Op: engine3.Clear, Node: c},
		)
	}
	apply := func() error {
		_, _, err := e.Apply(events)
		return err
	}
	for i := 0; i < 4; i++ {
		if err := apply(); err != nil {
			return err
		}
	}
	const rounds = 50
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	before := ms.Mallocs
	for i := 0; i < rounds; i++ {
		if err := apply(); err != nil {
			return err
		}
	}
	runtime.ReadMemStats(&ms)
	perEvent := float64(ms.Mallocs-before) / float64(rounds*len(events))
	rep.Add(benchfmt.Record{
		Name:    fmt.Sprintf("engine3/apply/mesh%d/faults100/events%d/seed7/allocs", m.W, len(events)),
		Workers: 1, Iterations: rounds, Seconds: perEvent, Unit: "allocs/event",
	})
	return nil
}

// engineAllocsRecord counts the incremental engine's steady-state
// allocation rate on a coalesced churn batch and records it as a
// machine-independent counter (unit "allocs/event"). This is the
// zero-alloc claim of the scratch-set kernel plumbing as a gated number:
// per-event work must stay allocation-free, leaving only the per-publish
// snapshot freeze, so the rate sits far below one and -bench-compare
// fails if a kernel change starts allocating per event again.
func engineAllocsRecord(rep *benchfmt.Report) error {
	m := grid.New(100, 100)
	e, err := engine.New(m)
	if err != nil {
		return err
	}
	faults := fault.NewInjector(m, fault.Clustered, 1).Inject(100)
	faults.Each(func(c grid.Coord) { e.AddFault(c) })

	// Add/clear pairs confined to a cluster, avoiding the base faults, so
	// every run of the batch returns the engine to its starting state —
	// the same regime internal/engine's TestApplyBatchAllocsPerEvent pins.
	rng := rand.New(rand.NewSource(7))
	const pairs = 128
	events := make([]engine.Event, 0, 2*pairs)
	for len(events) < 2*pairs {
		c := grid.XY(40+rng.Intn(16), 40+rng.Intn(16))
		if faults.Has(c) {
			continue
		}
		events = append(events,
			engine.Event{Op: engine.Add, Node: c},
			engine.Event{Op: engine.Clear, Node: c},
		)
	}
	apply := func() error {
		_, _, err := e.Apply(events)
		return err
	}
	// Warm the scratch pools to their steady-state sizes before counting.
	for i := 0; i < 4; i++ {
		if err := apply(); err != nil {
			return err
		}
	}
	const rounds = 50
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	before := ms.Mallocs
	for i := 0; i < rounds; i++ {
		if err := apply(); err != nil {
			return err
		}
	}
	runtime.ReadMemStats(&ms)
	perEvent := float64(ms.Mallocs-before) / float64(rounds*len(events))
	rep.Add(benchfmt.Record{
		Name:    fmt.Sprintf("engine/apply/mesh%d/faults100/events%d/seed7/allocs", m.W, len(events)),
		Workers: 1, Iterations: rounds, Seconds: perEvent, Unit: "allocs/event",
	})
	return nil
}

// walBenchRecords times the three durable-layer workloads and adds their
// records to the report. The append log and the compaction log live in
// separate directories so neither workload's file state leaks into the
// other; the recovery fixture is written once (256 batches of 8 events,
// every batch state-changing so the recorded versions strictly increase,
// as the decoder requires) and re-opened per iteration.
func walBenchRecords(rep *benchfmt.Report, m grid.Mesh, faults *nodeset.Set, iterations int) error {
	walDir, err := os.MkdirTemp("", "mfpsim-bench-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	meta := wal.Meta{Width: m.W, Height: m.H}
	rng := rand.New(rand.NewSource(1))
	randBatch := func(n int) []engine.Event {
		b := make([]engine.Event, n)
		for i := range b {
			op := engine.Add
			if rng.Intn(4) == 0 {
				op = engine.Clear
			}
			b[i] = engine.Event{Op: op, Node: grid.XY(rng.Intn(m.W), rng.Intn(m.H))}
		}
		return b
	}

	// Append: one acknowledged batch logged and fsynced. The version only
	// has to advance; this log is never recovered, so it does not need the
	// replay-exact accounting the recovery fixture keeps.
	appendLog, err := wal.Create[grid.Coord](filepath.Join(walDir, "append"), meta)
	if err != nil {
		return err
	}
	const appendEvents = 16
	batch := randBatch(appendEvents)
	var version uint64
	var walErr error
	secs, iters := timeIt(iterations, func() {
		version++
		if err := appendLog.Append(version, batch); err != nil {
			walErr = err
		}
	})
	if walErr != nil {
		return walErr
	}
	if err := appendLog.Close(); err != nil {
		return err
	}
	rep.Add(benchfmt.Record{
		Name:    fmt.Sprintf("wal/append/mesh%d/events%d/seed1", m.W, appendEvents),
		Workers: 1, Iterations: iters, Seconds: secs,
	})

	// Compact: persist the paper-scale fault set (the mfp.Build fixture's
	// 800 clustered faults) as the snapshot — temp file, fsync, rename —
	// and truncate the log. After the first iteration the log is already
	// empty, which is exactly the snapshot-write cost the shard pays at
	// every compaction after the truncate.
	compactLog, err := wal.Create[grid.Coord](filepath.Join(walDir, "compact"), meta)
	if err != nil {
		return err
	}
	snapshot := make([]grid.Coord, 0, faults.Len())
	faults.Each(func(c grid.Coord) { snapshot = append(snapshot, c) })
	secs, iters = timeIt(iterations, func() {
		version++
		if err := compactLog.Compact(version, snapshot); err != nil {
			walErr = err
		}
	})
	if walErr != nil {
		return walErr
	}
	if err := compactLog.Close(); err != nil {
		return err
	}
	rep.Add(benchfmt.Record{
		Name:    fmt.Sprintf("wal/compact/mesh%d/faults%d/seed1", m.W, len(snapshot)),
		Workers: 1, Iterations: iters, Seconds: secs,
	})

	// Recover: open the fixture log and replay every record, checking the
	// recorded versions like shard recovery does — the check is part of
	// the timed path on purpose, since startup always pays it.
	recoverDir := filepath.Join(walDir, "recover")
	recoverLog, err := wal.Create[grid.Coord](recoverDir, meta)
	if err != nil {
		return err
	}
	const recoverBatches, recoverEvents = 256, 8
	tracking := nodeset.New(m)
	var recVersion uint64
	for i := 0; i < recoverBatches; i++ {
		var b []engine.Event
		var inc int
		for inc == 0 {
			b = randBatch(recoverEvents)
			inc = engine.Replay(tracking, b...)
		}
		recVersion += uint64(inc)
		if err := recoverLog.Append(recVersion, b); err != nil {
			return err
		}
	}
	if err := recoverLog.Close(); err != nil {
		return err
	}
	secs, iters = timeIt(iterations, func() {
		log, rec, err := wal.Open[grid.Coord](recoverDir)
		if err != nil {
			walErr = err
			return
		}
		replayed := nodeset.New(m)
		v := rec.Version
		for _, b := range rec.Batches {
			v += uint64(engine.Replay(replayed, b.Events...))
			if v != b.Version {
				walErr = fmt.Errorf("wal recover benchmark: version diverged at record %d", b.Version)
			}
		}
		if err := log.Close(); err != nil {
			walErr = err
		}
	})
	if walErr != nil {
		return walErr
	}
	rep.Add(benchfmt.Record{
		Name:    fmt.Sprintf("wal/recover/mesh%d/batches%d/events%d/seed1", m.W, recoverBatches, recoverEvents),
		Workers: 1, Iterations: iters, Seconds: secs,
	})
	return nil
}

// runChurn3Report is the human-readable -churn3d mode: it times both
// replay strategies of the 3-D scenario once, differentially checks that
// they land on the same state, and prints the speedup. At scales where a
// per-event rebuild is infeasible (past 64³) the rebuild arm is skipped
// and the incremental result is checked against one final batch build.
func runChurn3Report(w io.Writer, cfg experiments.Churn3Config) error {
	seq := cfg.Sequence()
	var full *mfp3d.Result
	rebuildSecs := 0.0
	if cfg.RebuildFeasible() {
		rebuildSecs, _ = timeIt(1, func() { full = experiments.Churn3Rebuild(cfg) })
	}
	var snap *engine3.Snapshot
	var incErr error
	incSecs, _ := timeIt(1, func() { snap, incErr = experiments.Churn3Incremental(cfg) })
	if incErr != nil {
		return incErr
	}
	if full == nil {
		full = experiments.Churn3BatchBuild(cfg)
	}

	if err := experiments.Churn3Diff(snap, full); err != nil {
		return err
	}

	perEvent := incSecs / float64(len(seq))
	fmt.Fprintf(w, "churn3d scenario %s (%d events incl. warm-up)\n", cfg.Name(), len(seq))
	if cfg.RebuildFeasible() {
		fmt.Fprintf(w, "  full rebuild per event: %10.4fs total\n", rebuildSecs)
	} else {
		fmt.Fprintf(w, "  full rebuild per event: skipped (infeasible at %d³; verified against one batch build)\n", cfg.MeshSize)
	}
	fmt.Fprintf(w, "  incremental engine:     %10.4fs total  (%.1fµs/event)\n", incSecs, perEvent*1e6)
	if cfg.RebuildFeasible() {
		fmt.Fprintf(w, "  speedup:                %9.1fx\n", rebuildSecs/incSecs)
	}
	fmt.Fprintf(w, "  differential check:     OK (final states identical)\n")
	return nil
}

// runChurnReport is the human-readable -churn mode: it times both replay
// strategies of the scenario once, differentially checks that they land on
// the same state, and prints the speedup. The timed closures capture their
// last results, so the differential check reuses them instead of replaying
// the scenario a second time.
func runChurnReport(w io.Writer, cfg experiments.ChurnConfig) error {
	seq := cfg.Sequence()
	var full *core.Construction
	rebuildSecs, _ := timeIt(1, func() { full = experiments.ChurnRebuild(cfg) })
	var snap *engine.Snapshot
	var incErr error
	incSecs, _ := timeIt(1, func() { snap, incErr = experiments.ChurnIncremental(cfg) })
	if incErr != nil {
		return incErr
	}

	if err := churnDiff(snap, full); err != nil {
		return err
	}

	perEvent := incSecs / float64(len(seq))
	fmt.Fprintf(w, "churn scenario %s (%d events incl. warm-up)\n", cfg.Name(), len(seq))
	fmt.Fprintf(w, "  full rebuild per event: %10.4fs total\n", rebuildSecs)
	fmt.Fprintf(w, "  incremental engine:     %10.4fs total  (%.1fµs/event)\n", incSecs, perEvent*1e6)
	fmt.Fprintf(w, "  speedup:                %9.1fx\n", rebuildSecs/incSecs)
	fmt.Fprintf(w, "  differential check:     OK (final states identical)\n")
	return nil
}

// churnDiff asserts the incremental snapshot and the from-scratch
// construction describe the same state: fault set, every polygon, the
// disabled union and the scheme-1 unsafe set (the sets every per-node
// status is derived from), plus the snapshot's own invariants.
func churnDiff(snap *engine.Snapshot, full *core.Construction) error {
	switch {
	case !snap.Faults().Equal(full.Faults):
		return fmt.Errorf("churn differential check failed: fault sets diverge")
	case len(snap.Polygons()) != len(full.Minimum.Polygons):
		return fmt.Errorf("churn differential check failed: %d polygons vs %d rebuilt",
			len(snap.Polygons()), len(full.Minimum.Polygons))
	case !snap.Disabled().Equal(full.Minimum.Disabled):
		return fmt.Errorf("churn differential check failed: disabled sets diverge")
	case !snap.Unsafe().Equal(full.Blocks.Unsafe):
		return fmt.Errorf("churn differential check failed: unsafe sets diverge")
	}
	for i, p := range snap.Polygons() {
		if !p.Equal(full.Minimum.Polygons[i]) {
			return fmt.Errorf("churn differential check failed: polygon %d diverges", i)
		}
	}
	return snap.Validate()
}

// faultsLabel renders the swept fault counts compactly but exactly: the
// paper's default ladder becomes "100..800x8"; anything else lists every
// count, since the label is the workload's identity for -bench-compare.
func faultsLabel(counts []int) string {
	if len(counts) > 2 {
		step := counts[1] - counts[0]
		regular := step > 0
		for i := 1; regular && i < len(counts); i++ {
			regular = counts[i]-counts[i-1] == step
		}
		if regular {
			return fmt.Sprintf("%d..%dx%d", counts[0], counts[len(counts)-1], len(counts))
		}
	}
	parts := make([]string, len(counts))
	for i, n := range counts {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

// writeBenchReport writes the report to path as the BENCH_sweep.json
// artifact that CI archives.
func writeBenchReport(path string, rep *benchfmt.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compareBenchReport diffs the current report against the baseline file
// and returns the full verdict: the workloads that regressed past the
// tolerated slowdown ratio, plus the pairs no ratio could be formed for
// (new/retired workloads, zero times), which the caller surfaces as notes.
func compareBenchReport(baselinePath string, current *benchfmt.Report, tolerance float64) (benchfmt.Comparison, error) {
	f, err := os.Open(baselinePath)
	if err != nil {
		return benchfmt.Comparison{}, err
	}
	defer f.Close()
	baseline, err := benchfmt.ReadJSON(f)
	if err != nil {
		return benchfmt.Comparison{}, err
	}
	return benchfmt.Diff(baseline, current, tolerance), nil
}

// routeServeFixture prepares the serving benchmark at the route config's
// scale: the engine snapshot of a fixed clustered fault set (seed 1, kept
// off the border by the config's margin), plus a seeded batch of 2000
// query pairs drawn from the whole mesh (blocked endpoints included —
// rejecting them is part of serving).
func routeServeFixture(route experiments.RouteConfig, faultCount int) (*engine.Snapshot, []routing.Query) {
	m := grid.New(route.MeshSize, route.MeshSize)
	faults := fault.InjectWithMargin(m, fault.Clustered, 1, faultCount, route.Margin)
	snap, err := engine.SnapshotOf(m, faults)
	if err != nil {
		panic(fmt.Sprintf("mfpsim: route fixture: %v", err))
	}
	rng := rand.New(rand.NewSource(1))
	queries := make([]routing.Query, 2000)
	for i := range queries {
		queries[i] = routing.Query{
			Src: grid.XY(rng.Intn(m.W), rng.Intn(m.H)),
			Dst: grid.XY(rng.Intn(m.W), rng.Intn(m.H)),
		}
	}
	return snap, queries
}

// printBenchSummary renders the report's speedup column for the terminal;
// the JSON artifact carries the full data.
func printBenchSummary(w io.Writer, rep *benchfmt.Report) {
	fmt.Fprintf(w, "%-58s %8s %12s %9s\n", "workload", "workers", "seconds", "speedup")
	for _, rec := range rep.Records {
		speedup := "-"
		if rec.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", rec.Speedup)
		}
		fmt.Fprintf(w, "%-58s %8d %12.4f %9s\n", rec.Name, rec.Workers, rec.Seconds, speedup)
	}
}
