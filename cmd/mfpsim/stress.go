package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// stressMetricDeltas is the process-metric state the invariant check
// compares across a stress run. Everything is read from obs.Default — the
// same registry mfpd scrapes — so the check exercises the exact counters
// operators see.
type stressMetricDeltas struct {
	requests      float64
	received      float64
	applied       float64
	batches       float64
	evictions     float64
	rebuilds      float64
	engineApplied float64
}

func readStressMetrics() stressMetricDeltas {
	get := func(name string, labels ...string) float64 {
		v, _ := obs.Default.Value(name, labels...)
		return v
	}
	return stressMetricDeltas{
		requests:      get("shard_requests_total"),
		received:      get("shard_events_received_total"),
		applied:       get("shard_events_applied_total"),
		batches:       get("shard_batches_total"),
		evictions:     get("shard_evictions_total"),
		rebuilds:      get("shard_rebuilds_total"),
		engineApplied: get("engine_events_applied_total", "2"),
	}
}

func (a stressMetricDeltas) sub(b stressMetricDeltas) stressMetricDeltas {
	return stressMetricDeltas{
		requests:      a.requests - b.requests,
		received:      a.received - b.received,
		applied:       a.applied - b.applied,
		batches:       a.batches - b.batches,
		evictions:     a.evictions - b.evictions,
		rebuilds:      a.rebuilds - b.rebuilds,
		engineApplied: a.engineApplied - b.engineApplied,
	}
}

// checkStressMetrics asserts the observability plane against the harness's
// independently tracked ground truth. Exact invariants: every submitted
// event shows up in shard_events_received_total, every state change in
// shard_events_applied_total (the stress streams are all valid), and the
// coalesced batch/request counts match the per-shard stats the report
// aggregated. Evictions and rebuilds are >=: the report samples Stats
// before the manager closes, and a marked shard may still perform its
// eviction between that sample and shutdown. The engine-layer counter is
// also >=: rebuilds replay the fault set through a fresh engine, so it
// counts replayed events on top of first-time applications.
func checkStressMetrics(d stressMetricDeltas, rep *experiments.StressReport) error {
	last := rep.Checkpoints[len(rep.Checkpoints)-1]
	exact := []struct {
		name string
		got  float64
		want float64
	}{
		{"shard_events_received_total", d.received, float64(rep.Config.Events)},
		{"shard_events_applied_total", d.applied, float64(last.Applied)},
		{"shard_batches_total", d.batches, float64(rep.Ops.Batches)},
		{"shard_requests_total", d.requests, float64(rep.Ops.Requests)},
	}
	for _, iv := range exact {
		if iv.got != iv.want {
			return fmt.Errorf("metric invariant failed: %s delta = %g, want %g", iv.name, iv.got, iv.want)
		}
	}
	if d.evictions < float64(rep.Ops.Evictions) {
		return fmt.Errorf("metric invariant failed: shard_evictions_total delta = %g, want >= %d",
			d.evictions, rep.Ops.Evictions)
	}
	if d.rebuilds < float64(rep.Ops.Rebuilds) {
		return fmt.Errorf("metric invariant failed: shard_rebuilds_total delta = %g, want >= %d",
			d.rebuilds, rep.Ops.Rebuilds)
	}
	if d.engineApplied < d.applied {
		return fmt.Errorf("metric invariant failed: engine_events_applied_total{dim=\"2\"} delta = %g, want >= %g",
			d.engineApplied, d.applied)
	}
	return nil
}

// runStress executes the multi-shard stress/differential scenario and
// prints the deterministic report to out. Operational counters (evictions,
// rebuilds, coalescing) depend on scheduling, so they go to stderr and
// stay out of the byte-deterministic stream — as does the metric-invariant
// verdict, which cross-checks the obs registry against the harness's own
// accounting.
func runStress(out io.Writer, cfg experiments.StressConfig) error {
	before := readStressMetrics()
	rep, err := experiments.Stress(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.String())
	fmt.Fprintf(os.Stderr,
		"stress ops (scheduling-dependent): requests=%d batches=%d evictions=%d rebuilds=%d\n",
		rep.Ops.Requests, rep.Ops.Batches, rep.Ops.Evictions, rep.Ops.Rebuilds)
	if cfg.Crash {
		// Crash accounting stays on stderr: the durability claim is that
		// stdout is byte-identical to a crash-free run at the same seed.
		fmt.Fprintf(os.Stderr, "stress crashes: %d kill/recover cycles, %d torn tails injected and truncated, zero acknowledged events lost\n",
			rep.Crashes, rep.TornTails)
	}
	d := readStressMetrics().sub(before)
	if err := checkStressMetrics(d, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"stress metrics: invariants ok (received=%.0f applied=%.0f batches=%.0f evictions=%.0f rebuilds=%.0f)\n",
		d.received, d.applied, d.batches, d.evictions, d.rebuilds)
	return nil
}
