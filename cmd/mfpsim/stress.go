package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

// runStress executes the multi-shard stress/differential scenario and
// prints the deterministic report to out. Operational counters (evictions,
// rebuilds, coalescing) depend on scheduling, so they go to stderr and
// stay out of the byte-deterministic stream.
func runStress(out io.Writer, cfg experiments.StressConfig) error {
	rep, err := experiments.Stress(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.String())
	fmt.Fprintf(os.Stderr,
		"stress ops (scheduling-dependent): requests=%d batches=%d evictions=%d rebuilds=%d\n",
		rep.Ops.Requests, rep.Ops.Batches, rep.Ops.Evictions, rep.Ops.Rebuilds)
	return nil
}
