package main

import (
	"testing"

	"repro/internal/fault"
)

func TestParseModels(t *testing.T) {
	ms, err := parseModels("both")
	if err != nil || len(ms) != 2 {
		t.Fatalf("both: %v %v", ms, err)
	}
	ms, err = parseModels("random")
	if err != nil || len(ms) != 1 || ms[0] != fault.Random {
		t.Fatalf("random: %v %v", ms, err)
	}
	ms, err = parseModels("clustered")
	if err != nil || len(ms) != 1 || ms[0] != fault.Clustered {
		t.Fatalf("clustered: %v %v", ms, err)
	}
	if _, err = parseModels("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestParseCounts(t *testing.T) {
	if got, err := parseCounts(""); err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
	got, err := parseCounts("100, 200,300")
	if err != nil || len(got) != 3 || got[0] != 100 || got[2] != 300 {
		t.Fatalf("list: %v %v", got, err)
	}
	for _, bad := range []string{"x", "100,-5", "0", "1,,2"} {
		if _, err := parseCounts(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestFigureCaption(t *testing.T) {
	for _, fig := range []int{9, 10, 11} {
		if figureCaption(fig) == "" {
			t.Fatalf("no caption for figure %d", fig)
		}
	}
	if figureCaption(12) != "" {
		t.Fatal("caption for unknown figure")
	}
}

func TestChurnConfigFromFlags(t *testing.T) {
	cfg := churnConfig(100, nil, 200, 1)
	if cfg.MeshSize != 100 || cfg.Faults != 100 || cfg.Events != 200 || cfg.BaseSeed != 1 {
		t.Fatalf("default churn config: %+v", cfg)
	}
	if got := churnConfig(50, []int{30, 60}, 10, 2).Faults; got != 30 {
		t.Fatalf("explicit -faults ignored: %d", got)
	}
	if got := churnConfig(5, nil, 10, 1).Faults; got != 1 {
		t.Fatalf("tiny mesh floor: %d faults, want 1", got)
	}
}
