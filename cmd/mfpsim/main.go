// Command mfpsim regenerates the data of the paper's evaluation figures on
// a simulated 2-D mesh.
//
// Usage examples:
//
//	mfpsim -figure 9 -dist random            # Figure 9 (a)
//	mfpsim -figure 11 -dist clustered        # Figure 11 (b)
//	mfpsim -figure 0 -dist both              # every figure, both models
//	mfpsim -figure 10 -dist random -csv      # machine-readable output
//	mfpsim -mesh 50 -faults 50,100,150 -trials 10
//	mfpsim -workers 8                        # bound the sweep's worker pool
//	mfpsim -bench-json                       # timing sweep -> BENCH_sweep.json
//	mfpsim -bench-json -bench-compare old.json  # fail on perf regressions
//	mfpsim -churn 200                        # incremental vs rebuild speedup
//	mfpsim -churn3d 200                      # the same scenario on a 3-D mesh
//	mfpsim -churn3d-size 64                  # 3-D churn at the 64³ benchmark scale
//	mfpsim -stress                           # multi-shard differential stress run
//	mfpsim -stress -stress-shards 40 -stress-events 100000 -stress-clients 16
//	mfpsim -stress -stress-crash             # durable run with kill/recover cycles
//	mfpsim -route                            # detour overhead vs fault density
//	mfpsim -route -route-messages 1000 -dist clustered -workers 4
//
// Figure 9 tables are printed as log10 of the disabled-node count, matching
// the paper's y-axis; -csv always emits raw values.
//
// Sweeps fan their (faultCount, trial) cells out to -workers goroutines
// (default: one per CPU) and produce identical tables for every worker
// count. -bench-json times each requested sweep and a paper-scale
// mfp.Build at several pool sizes, plus the fixed churn scenario
// (incremental engine vs full rebuild per fault event), and writes the
// machine-readable report that CI archives per commit and diffs against
// the committed BENCH_baseline.json (see internal/benchfmt).
//
// -churn N runs the fault arrival/repair scenario of
// internal/experiments once: N events at steady state (default 1% density,
// override with -faults taking the first count) replayed both through the
// incremental engine and through a from-scratch core.Construct per event,
// differentially checked and reported with the speedup.
//
// -churn3d N is the 3-D twin: the 3-D churn scenario (steady-state fault
// count from the first -faults entry) replayed through internal/engine3
// and through a from-scratch mfp3d.Build per event, differentially checked
// (polytopes, disabled union, cuboid unsafe set) and reported with the
// speedup. -churn3d-size selects the scale (12 is the historical default;
// 64 and 128 are the benchmarked scales of the incremental cuboid block
// model) and -churn3d-events the event count; either flag enters the mode
// on its own with the scale's benchmark defaults. Past 64³ a per-event
// rebuild is infeasible — that regime is the engine's reason to exist — so
// the report skips the rebuild timing and checks the incremental result
// against one final batch build instead. Both scenarios also land in
// -bench-json as the churn/* and churn3d/* records (12³, 64³ and the
// incremental-only 128³).
//
// -route runs the route-overhead sweep: every (faultCount, trial) cell
// feeds its fault set through the incremental engine, builds a
// routing.Planner from the snapshot (the preparation path mfpd's route
// endpoint serves from), routes -route-messages seeded pairs, and reports
// routable%, delivered%, stretch and the abnormal-hop share. Tables are
// byte-identical at any -workers value; CI diffs two worker counts (make
// route-check).
//
// -stress drives interleaved fault churn across dozens of independent
// meshes (internal/shard) from concurrent clients under LRU eviction
// pressure, and differentially verifies every shard's snapshot against a
// from-scratch core.Construct at each checkpoint. The scenario is seeded
// and free of wall-clock: stdout is byte-identical for a fixed -seed at
// any -stress-clients or -stress-resident value (scheduling-dependent
// operational counters go to stderr). A verification failure exits 1 —
// CI runs this as the shard layer's acceptance gate.
//
// -stress-crash additionally runs the scenario durably: every shard
// journals acknowledged batches to a per-mesh WAL in a temp dir, and at
// seeded-random checkpoints the namespace is torn down, a random mesh's
// log gets a torn tail (the shape a crash mid-append leaves), and
// everything is recovered from disk under a zero-loss gate — every
// recovered shard must hold exactly its acknowledged state. stdout stays
// byte-identical to a crash-free run at the same seed; crash accounting
// goes to stderr. CI runs this as the durability acceptance gate (make
// crash-check).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/stats"
)

func main() {
	figure := flag.Int("figure", 0, "figure to reproduce: 9, 10 or 11 (0 = all)")
	dist := flag.String("dist", "both", "fault distribution: random, clustered or both")
	mesh := flag.Int("mesh", 100, "mesh side length n (the paper uses 100)")
	faultsFlag := flag.String("faults", "", "comma-separated fault counts (default: 100..800 step 100)")
	trials := flag.Int("trials", 30, "trials per data point")
	seed := flag.Int64("seed", 1, "base seed for the fault injectors")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	verify := flag.Bool("verify", false, "re-run the sweeps and check every claim of the paper's Section 4")
	workers := flag.Int("workers", 0, "worker-pool bound for the sweeps (0 = one per CPU, 1 = serial)")
	benchJSON := flag.Bool("bench-json", false, "time the sweeps at several worker counts and write a JSON report")
	benchOut := flag.String("bench-out", "BENCH_sweep.json", "output path of the -bench-json report")
	benchIter := flag.Int("bench-iter", 1, "iterations per timed workload in -bench-json mode")
	benchCompare := flag.String("bench-compare", "", "baseline report to diff the -bench-json run against; regressions exit non-zero")
	benchTolerance := flag.Float64("bench-tolerance", 1.30, "slowdown ratio tolerated by -bench-compare")
	churn := flag.Int("churn", 0, "run the fault-churn scenario with this many events and report the incremental-vs-rebuild speedup")
	churn3d := flag.Int("churn3d", 0, "run the 3-D fault-churn scenario with this many events and report the incremental-vs-rebuild speedup")
	churn3dSize := flag.Int("churn3d-size", 12, "mesh side length of the 3-D churn scenario (12, 64 and 128 are the benchmarked scales; past 64 the per-event rebuild baseline is skipped and the check runs against one final batch build)")
	churn3dEvents := flag.Int("churn3d-events", 0, "churn events of the 3-D scenario (0 = the scale's benchmark default); implies -churn3d mode like -churn3d-size")
	route := flag.Bool("route", false, "run the route-overhead sweep: routed stretch and abnormal-hop share vs fault density under the MFP model")
	routeMessages := flag.Int("route-messages", experiments.DefaultRoute(fault.Random, 1).Messages, "routed source/destination pairs per sweep cell in -route mode")
	// Flag defaults come from DefaultStress so the acceptance-scale floor
	// asserted in its tests binds to what `mfpsim -stress` (and CI's
	// stress gate) actually runs.
	stressDef := experiments.DefaultStress()
	stress := flag.Bool("stress", false, "run the deterministic multi-shard stress scenario with differential verification at every checkpoint")
	stressShards := flag.Int("stress-shards", stressDef.Shards, "number of independent meshes in -stress mode")
	stressEvents := flag.Int("stress-events", stressDef.Events, "total events across all shards in -stress mode")
	stressCheckpoints := flag.Int("stress-checkpoints", stressDef.Checkpoints, "differential verification barriers in -stress mode")
	stressClients := flag.Int("stress-clients", stressDef.Clients, "concurrent client goroutines in -stress mode (0 = GOMAXPROCS; results are identical for every value)")
	stressMesh := flag.Int("stress-mesh", stressDef.MeshSize, "per-shard mesh side length in -stress mode")
	stressResident := flag.Int("stress-resident", stressDef.MaxResident, "LRU bound on resident engines in -stress mode (0 = unlimited, no eviction pressure)")
	stressCrash := flag.Bool("stress-crash", false, "in -stress mode, run durable (per-mesh WALs in a temp dir) with seeded kill/recover cycles and torn-tail injection between checkpoints; zero acknowledged events may be lost")
	flag.Parse()

	if *workers < 0 {
		fatal(fmt.Errorf("-workers must be >= 0, got %d", *workers))
	}
	if *benchTolerance < 1.0 {
		fatal(fmt.Errorf("-bench-tolerance must be >= 1.0 (a slowdown ratio), got %g", *benchTolerance))
	}
	if *verify && *benchJSON {
		fatal(fmt.Errorf("-bench-json cannot be combined with -verify"))
	}
	if *churn < 0 {
		fatal(fmt.Errorf("-churn must be >= 0, got %d", *churn))
	}
	if *churn > 0 && (*verify || *benchJSON) {
		fatal(fmt.Errorf("-churn cannot be combined with -verify or -bench-json"))
	}
	if *churn3d < 0 {
		fatal(fmt.Errorf("-churn3d must be >= 0, got %d", *churn3d))
	}
	// -churn3d-size and -churn3d-events select the 3-D scenario on their
	// own; -churn3d N stays as the historical shorthand for "N events at
	// the default scale". Either spelling enters the same mode.
	churn3dMode := *churn3d > 0
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "churn3d-size", "churn3d-events":
			churn3dMode = true
		}
	})
	if *churn3dSize < 2 {
		fatal(fmt.Errorf("-churn3d-size must be >= 2, got %d", *churn3dSize))
	}
	if *churn3dEvents < 0 {
		fatal(fmt.Errorf("-churn3d-events must be >= 0, got %d", *churn3dEvents))
	}
	if *churn3d > 0 && *churn3dEvents > 0 {
		fatal(fmt.Errorf("-churn3d and -churn3d-events both set the event count; use one"))
	}
	if churn3dMode && (*verify || *benchJSON || *churn > 0) {
		fatal(fmt.Errorf("-churn3d cannot be combined with -verify, -bench-json or -churn"))
	}
	if *stress && (*verify || *benchJSON || *churn > 0 || churn3dMode) {
		fatal(fmt.Errorf("-stress cannot be combined with -verify, -bench-json or -churn/-churn3d"))
	}
	if *route && (*verify || *benchJSON || *churn > 0 || churn3dMode || *stress) {
		fatal(fmt.Errorf("-route cannot be combined with -verify, -bench-json, -churn, -churn3d or -stress"))
	}
	if !*route {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "route-messages" {
				fatal(fmt.Errorf("-route-messages requires -route"))
			}
		})
	}
	if !*stress {
		// The stress knobs only act in -stress mode; reject them elsewhere
		// so a CI gate missing -stress fails loudly instead of passing
		// vacuously.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "stress-shards", "stress-events", "stress-checkpoints", "stress-clients", "stress-mesh", "stress-resident", "stress-crash":
				fatal(fmt.Errorf("-%s requires -stress", f.Name))
			}
		})
	}
	if !*benchJSON {
		// The bench flags only act in -bench-json mode; reject them there so
		// a CI gate missing -bench-json fails loudly instead of passing
		// vacuously.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "bench-out", "bench-iter", "bench-compare", "bench-tolerance":
				fatal(fmt.Errorf("-%s requires -bench-json", f.Name))
			}
		})
	}

	if *stress {
		cfg := experiments.StressConfig{
			Shards:      *stressShards,
			MeshSize:    *stressMesh,
			Events:      *stressEvents,
			Checkpoints: *stressCheckpoints,
			Clients:     *stressClients,
			MaxResident: *stressResident,
			BaseSeed:    *seed,
		}
		if *stressCrash {
			// The WAL namespace lives in a run-scoped temp dir: crash mode
			// proves recovery, it doesn't accumulate state across runs.
			dataDir, err := os.MkdirTemp("", "mfpsim-stress-wal-")
			if err != nil {
				fatal(err)
			}
			cfg.DataDir = dataDir
			cfg.CompactBytes = 64 << 10 // small enough to force compactions mid-run
			cfg.Crash = true
		}
		err := runStress(os.Stdout, cfg)
		if cfg.DataDir != "" {
			os.RemoveAll(cfg.DataDir)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mfpsim: stress:", err)
			os.Exit(1)
		}
		return
	}

	if *verify {
		ok := true
		for _, c := range experiments.VerifyClaims(*trials, *workers) {
			verdict := "PASS"
			if !c.Holds {
				verdict = "FAIL"
				ok = false
			}
			fmt.Printf("[%s] %-22s %s\n        measured: %s\n", verdict, c.ID, c.Statement, c.Detail)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	models, err := parseModels(*dist)
	if err != nil {
		fatal(err)
	}
	counts, err := parseCounts(*faultsFlag)
	if err != nil {
		fatal(err)
	}

	if *route {
		def := experiments.DefaultRoute(models[0], *trials)
		if 2*def.Margin >= *mesh {
			fatal(fmt.Errorf("-route needs -mesh > %d (the fault-injection margin)", 2*def.Margin))
		}
		for _, model := range models {
			cfg := experiments.DefaultRoute(model, *trials)
			cfg.MeshSize = *mesh
			cfg.BaseSeed = *seed
			cfg.Workers = *workers
			cfg.Messages = *routeMessages
			if len(counts) > 0 {
				cfg.FaultCounts = counts
			}
			if err := cfg.Check(); err != nil {
				fatal(err)
			}
			tab := experiments.RouteSweep(cfg)
			if *csv {
				fmt.Printf("# route sweep, %s fault distribution, %dx%d mesh, %d trials, %d messages/cell\n",
					model, *mesh, *mesh, *trials, cfg.Messages)
				fmt.Print(tab.CSV(nil))
				continue
			}
			fmt.Printf("Route sweep — extended e-cube detour overhead under the MFP model (%s fault distribution, %dx%d mesh, %d trials, %d messages/cell)\n",
				model, *mesh, *mesh, *trials, cfg.Messages)
			fmt.Print(tab.Format(nil))
			fmt.Println()
		}
		return
	}

	if *churn > 0 {
		cfg := churnConfig(*mesh, counts, *churn, *seed)
		if cfg.Faults > *mesh**mesh {
			fatal(fmt.Errorf("-faults %d exceeds the %dx%d mesh", cfg.Faults, *mesh, *mesh))
		}
		if err := runChurnReport(os.Stdout, cfg); err != nil {
			fatal(err)
		}
		return
	}

	if churn3dMode {
		cfg := experiments.DefaultChurn3At(*churn3dSize)
		cfg.BaseSeed = *seed
		if *churn3d > 0 {
			cfg.Events = *churn3d
		}
		if *churn3dEvents > 0 {
			cfg.Events = *churn3dEvents
		}
		if len(counts) > 0 {
			cfg.Faults = counts[0]
		}
		if cfg.Faults > cfg.MeshSize*cfg.MeshSize*cfg.MeshSize {
			fatal(fmt.Errorf("-faults %d exceeds the %dx%dx%d mesh", cfg.Faults, cfg.MeshSize, cfg.MeshSize, cfg.MeshSize))
		}
		if err := runChurn3Report(os.Stdout, cfg); err != nil {
			fatal(err)
		}
		return
	}

	figures := []int{9, 10, 11}
	if *figure != 0 {
		figures = []int{*figure}
	}

	if *benchJSON {
		cfg := experiments.Default(models[0], *trials)
		cfg.MeshSize = *mesh
		cfg.BaseSeed = *seed
		if len(counts) > 0 {
			cfg.FaultCounts = counts
		}
		churn3s := []experiments.Churn3Config{
			experiments.DefaultChurn3(),
			experiments.DefaultChurn3At(64),
			experiments.DefaultChurn3At(128),
		}
		rep, err := runBenchSweepBest(models, figures, cfg, experiments.DefaultChurn(), churn3s,
			experiments.DefaultRoute(fault.Clustered, *trials), *benchIter, *workers)
		if err != nil {
			fatal(err)
		}
		if err := writeBenchReport(*benchOut, rep); err != nil {
			fatal(err)
		}
		printBenchSummary(os.Stdout, rep)
		fmt.Printf("wrote %s\n", *benchOut)
		if *benchCompare != "" {
			cmp, err := compareBenchReport(*benchCompare, rep, *benchTolerance)
			if err != nil {
				fatal(err)
			}
			// Skips are verdicts, not failures: new and retired workloads
			// are expected across PRs, but a gate that silently compared
			// nothing must be visible in the log.
			for _, s := range cmp.Skipped {
				fmt.Fprintln(os.Stderr, "mfpsim: benchmark", s)
			}
			// Improvements never fail the gate, but a workload sitting
			// below the tolerance band means the committed baseline
			// understates the code — the slack it leaves is exactly where
			// the next real regression hides.
			for _, im := range cmp.Improvements {
				fmt.Fprintln(os.Stderr, "mfpsim: benchmark improvement:", im)
			}
			if len(cmp.Improvements) > 0 {
				fmt.Fprintf(os.Stderr, "mfpsim: %d workload(s) improved past the tolerance band; refresh the baseline (make bench-baseline) to re-tighten the gate\n",
					len(cmp.Improvements))
			}
			for _, g := range cmp.Regressions {
				fmt.Fprintln(os.Stderr, "mfpsim: benchmark regression:", g)
			}
			if len(cmp.Regressions) > 0 {
				os.Exit(1)
			}
			fmt.Printf("no regressions against %s (tolerance %.2fx, %d improved, %d workloads skipped)\n",
				*benchCompare, *benchTolerance, len(cmp.Improvements), len(cmp.Skipped))
		}
		return
	}

	for _, model := range models {
		cfg := experiments.Default(model, *trials)
		cfg.MeshSize = *mesh
		cfg.BaseSeed = *seed
		cfg.Workers = *workers
		if len(counts) > 0 {
			cfg.FaultCounts = counts
		}
		for _, fig := range figures {
			tab, err := experiments.Figure(fig, cfg)
			if err != nil {
				fatal(err)
			}
			if *csv {
				fmt.Printf("# figure %d, %s fault distribution, %dx%d mesh, %d trials\n",
					fig, model, *mesh, *mesh, *trials)
				fmt.Print(tab.CSV(nil))
				continue
			}
			fmt.Printf("Figure %d — %s (%s fault distribution model, %dx%d mesh, %d trials)\n",
				fig, figureCaption(fig), model, *mesh, *mesh, *trials)
			var transform func(float64) float64
			if fig == 9 {
				transform = stats.Log10
				fmt.Println("(values are log10 of the node count, as in the paper's y-axis)")
			}
			fmt.Print(tab.Format(transform))
			fmt.Println()
		}
	}
}

// churnConfig derives the -churn scenario from the shared flags: the
// steady-state fault count is the first -faults entry, defaulting to the
// paper's 1% density (and at least one fault on tiny meshes).
func churnConfig(mesh int, counts []int, events int, seed int64) experiments.ChurnConfig {
	faults := mesh * mesh / 100
	if len(counts) > 0 {
		faults = counts[0]
	}
	if faults < 1 {
		faults = 1
	}
	return experiments.ChurnConfig{MeshSize: mesh, Faults: faults, Events: events, BaseSeed: seed}
}

func figureCaption(fig int) string {
	switch fig {
	case 9:
		return "average number of non-faulty but disabled nodes"
	case 10:
		return "average size of fault regions"
	case 11:
		return "average number of rounds for status determination"
	}
	return ""
}

func parseModels(dist string) ([]fault.Model, error) {
	switch dist {
	case "both":
		return []fault.Model{fault.Random, fault.Clustered}, nil
	default:
		m, err := fault.ParseModel(dist)
		if err != nil {
			return nil, err
		}
		return []fault.Model{m}, nil
	}
}

func parseCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid fault count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mfpsim:", err)
	os.Exit(2)
}
