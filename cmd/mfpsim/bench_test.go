package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/experiments"
	"repro/internal/fault"
)

func TestBenchWorkerCounts(t *testing.T) {
	cases := map[int][]int{
		1: {1},
		2: {1, 2},
		3: {1, 2, 3},
		8: {1, 2, 4, 8},
	}
	for limit, want := range cases {
		got := benchWorkerCounts(limit)
		if len(got) != len(want) {
			t.Fatalf("limit %d: %v, want %v", limit, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("limit %d: %v, want %v", limit, got, want)
			}
		}
	}
	if got := benchWorkerCounts(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("limit 0: %v, want [1]", got)
	}
}

// The full -bench-json path on a tiny configuration: report is written,
// parses back, has the serial baseline and speedups, and round-trips
// through the regression comparison.
func TestRunBenchSweepAndReport(t *testing.T) {
	cfg := experiments.Config{
		MeshSize:    20,
		FaultCounts: []int{10, 20},
		Trials:      2,
		BaseSeed:    5,
	}
	churn := experiments.ChurnConfig{MeshSize: 20, Faults: 6, Events: 20, BaseSeed: 5}
	churn3 := testChurn3Config()
	churn3Big := testChurn3InfeasibleConfig()
	route := testRouteConfig()
	rep, err := runBenchSweep([]fault.Model{fault.Random}, []int{9}, cfg, churn,
		[]experiments.Churn3Config{churn3, churn3Big}, route, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawSweepSerial, sawBuild, sawChurnRebuild, sawChurnIncremental bool
	var sawChurn3Rebuild, sawChurn3Incremental, sawChurn3BigIncremental bool
	var sawEngine3Allocs bool
	var sawRouteSweep, sawRoutePlanner, sawRouteServe bool
	for _, rec := range rep.Records {
		if strings.HasPrefix(rec.Name, "figure9/random/") && rec.Workers == 1 {
			sawSweepSerial = true
			if rec.Speedup != 1.0 {
				t.Fatalf("serial sweep speedup %v, want 1.0", rec.Speedup)
			}
		}
		if strings.HasPrefix(rec.Name, "mfp.Build/") {
			sawBuild = true
		}
		if rec.Name == churn.Name()+"/rebuild" {
			sawChurnRebuild = true
		}
		if rec.Name == churn3.Name()+"/rebuild" {
			sawChurn3Rebuild = true
		}
		if rec.Name == churn3.Name()+"/incremental" {
			sawChurn3Incremental = true
			if rec.Speedup <= 0 {
				t.Fatalf("churn3d incremental record lost its speedup: %+v", rec)
			}
		}
		if rec.Name == churn3Big.Name()+"/rebuild" {
			t.Fatalf("rebuild record timed at an infeasible scale: %+v", rec)
		}
		if rec.Name == churn3Big.Name()+"/incremental" {
			sawChurn3BigIncremental = true
			// No rebuild sibling exists, so no speedup can be formed.
			if rec.Speedup != 0 {
				t.Fatalf("incremental-only churn3d record has a speedup: %+v", rec)
			}
		}
		if strings.HasPrefix(rec.Name, "engine3/apply/") {
			sawEngine3Allocs = true
			if rec.Unit != "allocs/event" {
				t.Fatalf("engine3 allocs record unit %q, want allocs/event", rec.Unit)
			}
			if rec.Seconds >= 0.5 {
				t.Fatalf("engine3 steady-state apply allocates %.3f/event, want < 0.5", rec.Seconds)
			}
		}
		if rec.Name == churn.Name()+"/incremental" {
			sawChurnIncremental = true
			// The hand-filled incremental-vs-rebuild speedup must survive
			// the report pipeline (ComputeSpeedups only knows
			// worker-count baselines).
			if rec.Speedup <= 0 {
				t.Fatalf("churn incremental record lost its speedup: %+v", rec)
			}
		}
		if strings.HasPrefix(rec.Name, "route/sweep/") {
			sawRouteSweep = true
		}
		if strings.HasPrefix(rec.Name, "route/planner/") {
			sawRoutePlanner = true
		}
		if strings.HasPrefix(rec.Name, "route/serve/") {
			sawRouteServe = true
		}
		if rec.Seconds <= 0 {
			t.Fatalf("record %q has non-positive time %v", rec.Name, rec.Seconds)
		}
	}
	if !sawSweepSerial || !sawBuild || !sawChurnRebuild || !sawChurnIncremental {
		t.Fatalf("report misses expected workloads: %+v", rep.Records)
	}
	if !sawChurn3Rebuild || !sawChurn3Incremental || !sawChurn3BigIncremental {
		t.Fatalf("report misses churn3d workloads: %+v", rep.Records)
	}
	if !sawEngine3Allocs {
		t.Fatalf("report misses the engine3 allocs counter: %+v", rep.Records)
	}
	if !sawRouteSweep || !sawRoutePlanner || !sawRouteServe {
		t.Fatalf("report misses route workloads: %+v", rep.Records)
	}

	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	if err := writeBenchReport(path, rep); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := benchfmt.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(rep.Records) {
		t.Fatalf("%d records after round trip, want %d", len(back.Records), len(rep.Records))
	}

	// A report can never regress against itself, and a self-diff has no
	// one-sided or zero-time pairs to skip.
	cmp, err := compareBenchReport(path, rep, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions) != 0 {
		t.Fatalf("self-comparison flagged %+v", cmp.Regressions)
	}
	if len(cmp.Skipped) != 0 {
		t.Fatalf("self-comparison skipped %+v", cmp.Skipped)
	}
}

// After the best-of-passes merge, ComputeSpeedups stamps every Workers==1
// record with 1.0; the strategy-pair recompute must restore the
// rebuild/incremental ratio from the merged minima and clear the stamp off
// incremental-only records, which have no rebuild sibling to pair with.
func TestRecomputeStrategySpeedups(t *testing.T) {
	rep := benchfmt.New("go", 1)
	rep.Add(benchfmt.Record{Name: "churn3d/small/rebuild", Workers: 1, Seconds: 0.8})
	rep.Add(benchfmt.Record{Name: "churn3d/small/incremental", Workers: 1, Seconds: 0.2})
	rep.Add(benchfmt.Record{Name: "churn3d/huge/incremental", Workers: 1, Seconds: 0.5})
	rep.ComputeSpeedups()
	recomputeStrategySpeedups(rep)
	want := map[string]float64{
		"churn3d/small/rebuild":     1.0,
		"churn3d/small/incremental": 4.0,
		"churn3d/huge/incremental":  0,
	}
	for _, rec := range rep.Records {
		if rec.Speedup != want[rec.Name] {
			t.Fatalf("%s speedup %v, want %v", rec.Name, rec.Speedup, want[rec.Name])
		}
	}
}

// testChurn3Config is a tiny, fast 3-D churn scale for bench tests.
func testChurn3Config() experiments.Churn3Config {
	return experiments.Churn3Config{MeshSize: 8, Faults: 6, Events: 16, BaseSeed: 5}
}

// testChurn3InfeasibleConfig is the smallest scale past the rebuild
// feasibility bound: the sweep must time its incremental arm alone.
func testChurn3InfeasibleConfig() experiments.Churn3Config {
	return experiments.Churn3Config{MeshSize: 65, Faults: 6, Events: 8, BaseSeed: 5}
}

// testRouteConfig is a tiny, fast route scale for bench tests.
func testRouteConfig() experiments.RouteConfig {
	return experiments.RouteConfig{
		MeshSize:    20,
		FaultCounts: []int{4, 8},
		Trials:      1,
		Model:       fault.Clustered,
		BaseSeed:    5,
		Messages:    40,
		Margin:      3,
	}
}

// The record name must encode the full workload identity, so sweeps over
// different fault ladders or seeds can never be cross-compared.
func TestFaultsLabel(t *testing.T) {
	cases := map[string][]int{
		"100..800x8": {100, 200, 300, 400, 500, 600, 700, 800},
		"10..30x3":   {10, 20, 30},
		"10,20,40":   {10, 20, 40},
		"5,3":        {5, 3},
		"7":          {7},
	}
	for want, counts := range cases {
		if got := faultsLabel(counts); got != want {
			t.Fatalf("faultsLabel(%v) = %q, want %q", counts, got, want)
		}
	}
}

// timeIt must calibrate very short workloads up to the minimum sample so
// -bench-compare is not gating on timer noise.
func TestTimeItCalibrates(t *testing.T) {
	secs, iters := timeIt(1, func() {})
	if iters <= 1 {
		t.Fatalf("no-op workload ran only %d iterations", iters)
	}
	if secs < 0 {
		t.Fatalf("negative mean %v", secs)
	}
}

func TestRunBenchSweepRejectsUnknownFigure(t *testing.T) {
	cfg := experiments.Config{MeshSize: 10, FaultCounts: []int{5}, Trials: 1, BaseSeed: 1}
	churn := experiments.ChurnConfig{MeshSize: 10, Faults: 2, Events: 4, BaseSeed: 1}
	if _, err := runBenchSweep([]fault.Model{fault.Random}, []int{12}, cfg, churn,
		[]experiments.Churn3Config{testChurn3Config()}, testRouteConfig(), 1, 0); err == nil {
		t.Fatal("figure 12 should be rejected")
	}
}

// The -workers flag caps the timed pool sizes in -bench-json mode.
func TestRunBenchSweepHonorsWorkersCap(t *testing.T) {
	cfg := experiments.Config{MeshSize: 15, FaultCounts: []int{5}, Trials: 1, BaseSeed: 3}
	churn := experiments.ChurnConfig{MeshSize: 15, Faults: 2, Events: 4, BaseSeed: 3}
	rep, err := runBenchSweep([]fault.Model{fault.Random}, []int{9}, cfg, churn,
		[]experiments.Churn3Config{testChurn3Config()}, testRouteConfig(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range rep.Records {
		if rec.Workers > 2 {
			t.Fatalf("record %q timed workers=%d despite cap 2", rec.Name, rec.Workers)
		}
	}
}

func TestCompareBenchReportMissingBaseline(t *testing.T) {
	rep := benchfmt.New("go", 1)
	if _, err := compareBenchReport(filepath.Join(t.TempDir(), "nope.json"), rep, 1.3); err == nil {
		t.Fatal("missing baseline file should error")
	}
}

func TestRunChurnReport(t *testing.T) {
	var buf strings.Builder
	cfg := experiments.ChurnConfig{MeshSize: 24, Faults: 8, Events: 30, BaseSeed: 4}
	if err := runChurnReport(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{cfg.Name(), "speedup:", "differential check:     OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("churn report misses %q:\n%s", want, out)
		}
	}
}

func TestRunChurn3Report(t *testing.T) {
	var buf strings.Builder
	cfg := testChurn3Config()
	if err := runChurn3Report(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{cfg.Name(), "speedup:", "differential check:     OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("churn3d report misses %q:\n%s", want, out)
		}
	}
}

// Past the rebuild feasibility bound the report must skip the rebuild arm
// (and the speedup line) and still differentially check the final state
// against one batch build.
func TestRunChurn3ReportInfeasibleRebuild(t *testing.T) {
	var buf strings.Builder
	cfg := testChurn3InfeasibleConfig()
	if err := runChurn3Report(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{cfg.Name(), "skipped (infeasible", "differential check:     OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("infeasible churn3d report misses %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "speedup:") {
		t.Fatalf("infeasible churn3d report printed a speedup:\n%s", out)
	}
}
