// Command docscheck validates the repository's Markdown so documentation
// rots loudly instead of silently: every relative link must resolve to a
// file that exists in the tree, and every anchor — in-file `#fragment` or
// cross-file `page.md#fragment` — must match a heading on the target page
// (GitHub slug rules). External http(s) and mailto links are not fetched;
// a link checker that needs the network is a flaky CI job.
//
// Usage:
//
//	docscheck [root]
//
// Walks root (default ".") for *.md files, skipping .git and testdata
// directories, and exits non-zero listing every broken link.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"unicode"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	files, err := markdownFiles(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	var broken []string
	anchors := make(map[string]map[string]bool) // file path -> heading slugs
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(1)
		}
		anchors[f] = headingSlugs(string(data))
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(1)
		}
		for _, l := range links(string(data)) {
			if msg := check(f, l, anchors); msg != "" {
				broken = append(broken, fmt.Sprintf("%s: %s", f, msg))
			}
		}
	}
	if len(broken) > 0 {
		sort.Strings(broken)
		for _, b := range broken {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s) in %d file(s) scanned\n", len(broken), len(files))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d markdown file(s) ok\n", len(files))
}

func markdownFiles(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	sort.Strings(files)
	return files, err
}

// check resolves one link relative to the file it appears in. It returns
// an error message, or "" when the link is fine (or out of scope).
func check(file, link string, anchors map[string]map[string]bool) string {
	switch {
	case strings.HasPrefix(link, "http://"),
		strings.HasPrefix(link, "https://"),
		strings.HasPrefix(link, "mailto:"):
		return "" // external: not fetched by design
	}
	target, frag, _ := strings.Cut(link, "#")
	resolved := file
	if target != "" {
		resolved = filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
		info, err := os.Stat(resolved)
		if err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", link, resolved)
		}
		if info.IsDir() {
			return "" // directory links render as listings; nothing to anchor
		}
	}
	if frag == "" {
		return ""
	}
	slugs, ok := anchors[resolved]
	if !ok {
		// Anchor into a non-markdown file (e.g. #L10 into source): GitHub
		// resolves those against the blob view, not headings. Let it pass.
		return ""
	}
	if !slugs[frag] {
		return fmt.Sprintf("broken anchor %q: no heading in %s slugs to %q", link, resolved, frag)
	}
	return ""
}

var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// links extracts inline link and image targets, ignoring fenced code
// blocks (shell snippets are full of [brackets](that) aren't links).
func links(doc string) []string {
	var out []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(stripCodeSpans(line), -1) {
			t := strings.TrimSpace(m[1])
			t = strings.TrimPrefix(t, "<")
			t = strings.TrimSuffix(t, ">")
			if t != "" {
				out = append(out, t)
			}
		}
	}
	return out
}

// stripCodeSpans blanks `inline code` so bracket syntax inside it does not
// parse as a link.
func stripCodeSpans(line string) string {
	var b strings.Builder
	in := false
	for _, r := range line {
		switch {
		case r == '`':
			in = !in
			b.WriteRune(' ')
		case in:
			b.WriteRune(' ')
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// headingSlugs returns the GitHub anchor slugs of every heading in doc,
// with GitHub's -1, -2 suffixing for duplicate headings.
func headingSlugs(doc string) map[string]bool {
	slugs := make(map[string]bool)
	seen := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		level := len(trimmed) - len(strings.TrimLeft(trimmed, "#"))
		if level > 6 || level == len(trimmed) || trimmed[level] != ' ' {
			continue
		}
		s := slugify(trimmed[level+1:])
		if n := seen[s]; n > 0 {
			slugs[fmt.Sprintf("%s-%d", s, n)] = true
		} else {
			slugs[s] = true
		}
		seen[s]++
	}
	return slugs
}

// slugify applies GitHub's heading-anchor rules: lowercase, drop
// everything but letters, digits, spaces and hyphens (backticks vanish,
// so code spans contribute their text), then spaces become hyphens.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}
