package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestLinks(t *testing.T) {
	doc := "See [the docs](docs/OPERATIONS.md) and ![fig](fig.png).\n" +
		"External [site](https://example.com) and <https://raw.example.com>.\n" +
		"```\nnot a [link](inside.md) here\n```\n" +
		"Inline `code with [brackets](no.md)` is skipped.\n" +
		"[anchored](METRICS.md#shard-layer) [in-file](#running)\n"
	got := links(doc)
	want := []string{
		"docs/OPERATIONS.md", "fig.png", "https://example.com",
		"METRICS.md#shard-layer", "#running",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("links = %q, want %q", got, want)
	}
}

func TestHeadingSlugs(t *testing.T) {
	doc := "# Metrics reference\n" +
		"## The first 10 minutes of debugging\n" +
		"## Per-mesh stats: `GET /meshes/{name}/stats`\n" +
		"## Dup\n## Dup\n" +
		"```\n# not a heading\n```\n" +
		"#missing-space is not a heading\n"
	slugs := headingSlugs(doc)
	for _, want := range []string{
		"metrics-reference",
		"the-first-10-minutes-of-debugging",
		"per-mesh-stats-get-meshesnamestats",
		"dup", "dup-1",
	} {
		if !slugs[want] {
			t.Errorf("missing slug %q in %v", want, slugs)
		}
	}
	if slugs["not-a-heading"] || slugs["missing-space-is-not-a-heading"] {
		t.Errorf("fence or malformed heading slugged: %v", slugs)
	}
}

func TestCheck(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "docs")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	a := filepath.Join(dir, "README.md")
	b := filepath.Join(sub, "B.md")
	if err := os.WriteFile(a, []byte("# Top\n[ok](docs/B.md#section)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("# B\n## Section\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	anchors := map[string]map[string]bool{
		a: headingSlugs("# Top\n"),
		b: headingSlugs("# B\n## Section\n"),
	}
	cases := []struct {
		link string
		ok   bool
	}{
		{"docs/B.md", true},
		{"docs/B.md#section", true},
		{"docs/B.md#nope", false},
		{"docs/missing.md", false},
		{"#top", true},
		{"#absent", false},
		{"https://example.com/unreachable", true}, // never fetched
	}
	for _, c := range cases {
		msg := check(a, c.link, anchors)
		if (msg == "") != c.ok {
			t.Errorf("check(%q) = %q, want ok=%v", c.link, msg, c.ok)
		}
	}
}
